"""Batch dedup pipeline vs the per-page reference: exact equivalence.

The vectorized batch path (`DedupAgent.dedup`) must be a pure
performance transformation of the original page-at-a-time loop
(`DedupAgent.dedup_reference`): identical page-table entries, identical
stats and refcounts, and byte-identical restores — for both sampling
strategies, with and without ASLR, at both patch levels.
"""

from __future__ import annotations

import pytest

from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import (
    FingerprintConfig,
    SamplingStrategy,
    image_fingerprints,
)
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from tests.conftest import TEST_SCALE


def _build_agents(suite, config: FingerprintConfig, level: int):
    """Two agents (batch / reference) over one shared store + registry.

    The registry holds a same-function base (LinAlg) and a
    cross-function base (Vanilla) so base choice exercises both.
    """
    store = CheckpointStore()
    registry = FingerprintRegistry(config)
    fabric = RdmaFabric()
    agents = tuple(
        DedupAgent(
            0,
            registry=registry,
            store=store,
            fabric=fabric,
            costs=CostModel(),
            content_scale=TEST_SCALE,
            fingerprint_config=config,
            patch_level=level,
        )
        for _ in range(2)
    )
    for function, seed, node in [("LinAlg", 100, 1), ("Vanilla", 101, 2)]:
        profile = suite.get(function)
        image = profile.synthesize(seed, content_scale=TEST_SCALE, executed=True)
        checkpoint = BaseCheckpoint(
            function=function,
            node_id=node,
            image=image,
            owner_sandbox_id=seed,
            full_size_bytes=profile.memory_bytes,
        )
        store.add(checkpoint)
        for index, fingerprint in enumerate(image_fingerprints(image, config)):
            registry.register_page(
                PageRef(checkpoint.checkpoint_id, node, index), fingerprint
            )
    return agents


def _make_sandbox(profile, seed: int, aslr: bool) -> Sandbox:
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
    sandbox.image = profile.synthesize(
        seed, content_scale=TEST_SCALE, aslr=aslr, executed=True
    )
    return sandbox


@pytest.mark.parametrize(
    "strategy", [SamplingStrategy.VALUE_SAMPLED, SamplingStrategy.FIXED_OFFSETS]
)
@pytest.mark.parametrize("aslr", [False, True])
@pytest.mark.parametrize("level", [1, 2])
def test_batch_path_matches_reference(suite, strategy, aslr, level):
    config = FingerprintConfig(strategy=strategy)
    agent_batch, agent_ref = _build_agents(suite, config, level)
    profile = suite.get("LinAlg")
    for seed in (300, 301, 302):
        outcome_batch = agent_batch.dedup(_make_sandbox(profile, seed, aslr))
        outcome_ref = agent_ref.dedup_reference(_make_sandbox(profile, seed, aslr))

        assert outcome_batch.table.entries == outcome_ref.table.entries
        assert outcome_batch.table.stats == outcome_ref.table.stats
        assert outcome_batch.table.base_refs == outcome_ref.table.base_refs
        assert (
            outcome_batch.table.original_checksum
            == outcome_ref.table.original_checksum
        )
        assert outcome_batch.timings == outcome_ref.timings

        restored_batch = agent_batch.restore(outcome_batch.table, verify=True)
        restored_ref = agent_ref.restore(outcome_ref.table, verify=True)
        assert (
            restored_batch.image.data.tobytes() == restored_ref.image.data.tobytes()
        )
        assert (
            restored_batch.image.checksum() == outcome_batch.table.original_checksum
        )


def test_cross_function_dedup_matches(suite):
    """A Vanilla sandbox deduping against LinAlg + Vanilla bases."""
    config = FingerprintConfig()
    agent_batch, agent_ref = _build_agents(suite, config, level=1)
    profile = suite.get("Vanilla")
    for seed in (400, 401):
        outcome_batch = agent_batch.dedup(_make_sandbox(profile, seed, False))
        outcome_ref = agent_ref.dedup_reference(_make_sandbox(profile, seed, False))
        assert outcome_batch.table.entries == outcome_ref.table.entries
        assert outcome_batch.table.stats == outcome_ref.table.stats
        assert outcome_batch.table.base_refs == outcome_ref.table.base_refs
