"""Documentation correctness: the README quickstart must actually run,
and every documented experiment id must exist."""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self) -> str:
        return (REPO_ROOT / "README.md").read_text()

    def test_quickstart_snippet_executes(self, readme):
        """Extract the first python code block and run it (shrunk)."""
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README lost its quickstart code block"
        code = blocks[0]
        # Shrink the workload so the doc test stays fast.
        code = code.replace("generate(10,", "generate(2,")
        namespace: dict = {}
        exec(compile(code, "<readme-quickstart>", "exec"), namespace)  # noqa: S102

    def test_examples_listed_exist(self, readme):
        for match in re.findall(r"`examples/(\w+\.py)`", readme):
            assert (REPO_ROOT / "examples" / match).exists(), match

    def test_referenced_docs_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
            assert (REPO_ROOT / name).exists()


class TestCliDocAgreement:
    def test_every_listed_experiment_runs_through_dispatch(self):
        from repro.cli import _EXPERIMENTS, build_parser

        parser = build_parser()
        for name in _EXPERIMENTS:
            args = parser.parse_args(["experiment", name])
            assert args.name == name

    def test_design_doc_maps_every_bench_file(self):
        """DESIGN.md's experiment index references existing bench files."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO_ROOT / "benchmarks" / match).exists(), match

    def test_every_bench_file_writes_a_known_result(self):
        """Each bench module calls write_result (self-describing output)."""
        for bench in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            text = bench.read_text()
            assert "write_result(" in text, bench.name
