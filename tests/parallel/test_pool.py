"""Unit tests of the parallel plumbing: arenas, pool, kernels, model."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import PAGE_SIZE, LruCache, hash_bytes, hash_bytes_many
from repro.core.costs import CostModel, StageOverlap, pipelined_ms
from repro.memory.patch import apply_patch, apply_patch_into, compute_patch
from repro.parallel.arena import LocalArena, ShmArena
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import WorkerError, WorkerPool, run_task


# ------------------------------------------------------------------ config


@pytest.mark.parametrize("kwargs", [{"workers": 0}, {"batch_pages": 0}, {"depth": 0}])
def test_parallel_config_validates(kwargs):
    with pytest.raises(ValueError):
        ParallelConfig(**kwargs)


# ------------------------------------------------------------------ arenas


@pytest.mark.parametrize("cls", [LocalArena, ShmArena])
def test_arena_roundtrip_and_growth(cls):
    arena = cls(3 * PAGE_SIZE)
    try:
        assert arena.capacity >= 3 * PAGE_SIZE
        assert arena.capacity % PAGE_SIZE == 0
        arena.view[: PAGE_SIZE] = 7
        assert int(arena.view[0]) == 7
        bigger = cls(arena.capacity * 4)
        try:
            assert bigger.capacity >= arena.capacity * 4
        finally:
            bigger.close()
    finally:
        arena.close()


def test_shm_arena_close_is_idempotent():
    arena = ShmArena(PAGE_SIZE)
    arena.close()
    arena.close()


# ----------------------------------------------------------------- kernels


def test_apply_patch_into_matches_apply_patch():
    rng = np.random.default_rng(0)
    base = rng.integers(0, 256, PAGE_SIZE, dtype=np.uint8)
    target = base.copy()
    target[100:200] = rng.integers(0, 256, 100, dtype=np.uint8)
    patch = compute_patch(target, base)
    out = np.zeros(PAGE_SIZE, dtype=np.uint8)
    apply_patch_into(patch, base, out)
    assert out.tobytes() == apply_patch(patch, base)
    assert out.tobytes() == target.tobytes()


def test_apply_patch_into_validates_lengths():
    base = np.zeros(PAGE_SIZE, dtype=np.uint8)
    patch = compute_patch(base, base)
    with pytest.raises(ValueError):
        apply_patch_into(patch, base[:-1], np.zeros(PAGE_SIZE, dtype=np.uint8))
    with pytest.raises(ValueError):
        apply_patch_into(patch, base, np.zeros(PAGE_SIZE - 1, dtype=np.uint8))


def test_hash_bytes_many_matches_scalar():
    chunks = [bytes([i] * 64) for i in range(20)] + [b"", b"x"]
    for bits in (8, 32, 63, 64):
        batched = hash_bytes_many(chunks, bits)
        assert batched.dtype == np.uint64
        assert batched.tolist() == [hash_bytes(c, bits) for c in chunks]
    with pytest.raises(ValueError):
        hash_bytes_many(chunks, 65)
    with pytest.raises(ValueError):
        hash_bytes_many(chunks, 0)


def test_run_task_rejects_unknown_kind():
    with pytest.raises(ValueError):
        run_task(("nope", 0), lambda token: np.zeros(0, np.uint8), LruCache(4))


# -------------------------------------------------------------------- pool


def test_pool_error_propagates_and_pool_survives():
    pool = WorkerPool(1)
    try:
        pool.submit(("bogus-kind", 42))
        with pytest.raises(WorkerError, match="batch 42"):
            pool.next_result()
        assert pool.alive  # a task failure must not kill the worker
    finally:
        pool.shutdown()
        assert not pool.alive


def test_shared_pool_is_reused_and_refreshed():
    pool = WorkerPool.shared(2)
    assert WorkerPool.shared(2) is pool
    pool.shutdown()
    fresh = WorkerPool.shared(2)
    try:
        assert fresh is not pool
        assert fresh.alive
    finally:
        fresh.shutdown()


# ------------------------------------------------------------- cost model


def test_pipelined_ms_degenerates_and_bounds():
    stages = (4.0, 10.0, 2.0)
    assert pipelined_ms(stages, 1) == pytest.approx(sum(stages))
    many = pipelined_ms(stages, 1000)
    assert many == pytest.approx(max(stages), rel=0.01)
    for batches in (2, 4, 8):
        total = pipelined_ms(stages, batches)
        assert max(stages) < total < sum(stages)
    with pytest.raises(ValueError):
        pipelined_ms(stages, 0)


def test_stage_overlap_validates():
    with pytest.raises(ValueError):
        StageOverlap(workers=0, batches=1)
    with pytest.raises(ValueError):
        StageOverlap(workers=1, batches=0)


def test_lookup_batched_ms_never_exceeds_serial():
    costs = CostModel()
    pages = 4096
    serial = costs.lookup_ms(pages)
    assert costs.lookup_batched_ms(pages, pages * 2) == pytest.approx(serial)
    batched = costs.lookup_batched_ms(pages, 8)
    assert batched < serial
    # one batch = one RPC + per-page table work
    assert costs.lookup_batched_ms(pages, 1) == pytest.approx(
        (costs.lookup_rpc_us + pages * (costs.lookup_us_per_page - costs.lookup_rpc_us))
        / 1e3
    )
    with pytest.raises(ValueError):
        costs.lookup_batched_ms(pages, 0)
