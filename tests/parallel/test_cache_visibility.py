"""Base-page LRU cache visibility: hit/miss counters and RunMetrics.

The per-agent cache of decoded base pages was added in PR 1; this pins
its observable behaviour: a dedup op populates the cache (misses), a
warm restore of the same table is served from it (hits), and a platform
run surfaces the totals in ``RunMetrics``.
"""

from __future__ import annotations

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite
from tests.conftest import TEST_SCALE
from tests.parallel.test_parallel_equivalence import _build_agents, _make_sandbox

from repro.parallel import ParallelConfig


def test_warm_restore_hits_base_page_cache(suite):
    agent, _ = _build_agents(suite, ParallelConfig())
    profile = suite.get("LinAlg")
    outcome = agent.dedup(_make_sandbox(profile, 700, False))
    assert outcome.table.stats.patched_pages > 0
    misses_after_dedup = agent.base_page_cache.misses
    assert misses_after_dedup > 0, "dedup populates the cache via misses"
    hits_after_dedup = agent.base_page_cache.hits

    agent.restore(outcome.table, verify=True)
    assert agent.base_page_cache.hits > hits_after_dedup, (
        "a warm restore re-reads the base pages the dedup op just cached"
    )
    assert agent.base_page_cache.misses == misses_after_dedup


def test_run_metrics_surface_cache_counters():
    suite = FunctionBenchSuite.replicated(["Vanilla", "LinAlg"], 2)
    trace = AzureTraceGenerator(seed=21).generate(8, suite.names())
    config = ClusterConfig(
        nodes=2,
        node_memory_mb=256.0,
        content_scale=TEST_SCALE,
        seed=3,
        verify_restores=True,
    )
    platform = build_platform(
        PlatformKind.MEDES,
        config,
        suite,
        medes=MedesPolicyConfig(alpha=25.0, idle_period_ms=10_000.0),
    )
    report = platform.run(trace)
    metrics = report.metrics
    if not metrics.dedup_ops:
        pytest.skip("trace produced no dedup ops")
    assert metrics.base_page_cache_misses > 0
    total_agent_misses = sum(
        a.base_page_cache.misses for a in platform.agents.values()
    )
    total_agent_hits = sum(a.base_page_cache.hits for a in platform.agents.values())
    assert metrics.base_page_cache_misses == total_agent_misses
    assert metrics.base_page_cache_hits == total_agent_hits
    if metrics.start_counts()[StartType.DEDUP]:
        assert metrics.base_page_cache_hits > 0, (
            "dedup starts replay base pages the dedup op already decoded"
        )
