"""Parallel data plane vs the serial agent paths: exact equivalence.

The staged pipeline (any ``workers``/``batch_pages``/``depth``) must be
a pure execution transformation of :meth:`DedupAgent.dedup` and
:meth:`DedupAgent.restore`: bit-identical page tables (entries, stats,
refcounts) and byte-identical restored images, across profiles and
ASLR.  ``workers=1`` (the inline engine, the default ParallelConfig)
is the pinned configuration the ISSUE's acceptance criteria names;
``workers>1`` exercises the forked shared-memory pool.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import FingerprintConfig, image_fingerprints
from repro.parallel import ParallelConfig
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from tests.conftest import TEST_SCALE


def _build_agents(suite, parallel: ParallelConfig):
    """A serial and a parallel agent over one shared store + registry."""
    store = CheckpointStore()
    config = FingerprintConfig()
    registry = FingerprintRegistry(config)
    fabric = RdmaFabric()
    serial = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=fabric,
        costs=CostModel(),
        content_scale=TEST_SCALE,
        fingerprint_config=config,
    )
    pipelined = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=fabric,
        costs=CostModel(),
        content_scale=TEST_SCALE,
        fingerprint_config=config,
        parallel=parallel,
    )
    for function, seed, node in [("LinAlg", 100, 1), ("Vanilla", 101, 2)]:
        profile = suite.get(function)
        image = profile.synthesize(seed, content_scale=TEST_SCALE, executed=True)
        checkpoint = BaseCheckpoint(
            function=function,
            node_id=node,
            image=image,
            owner_sandbox_id=seed,
            full_size_bytes=profile.memory_bytes,
        )
        store.add(checkpoint)
        for index, fingerprint in enumerate(image_fingerprints(image, config)):
            registry.register_page(
                PageRef(checkpoint.checkpoint_id, node, index), fingerprint
            )
    return serial, pipelined


def _make_sandbox(profile, seed: int, aslr: bool) -> Sandbox:
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
    sandbox.image = profile.synthesize(
        seed, content_scale=TEST_SCALE, aslr=aslr, executed=True
    )
    return sandbox


def _assert_equivalent(serial: DedupAgent, pipelined: DedupAgent, profile, seed, aslr):
    outcome_serial = serial.dedup(_make_sandbox(profile, seed, aslr))
    outcome_parallel = pipelined.dedup(_make_sandbox(profile, seed, aslr))

    assert outcome_parallel.table.entries == outcome_serial.table.entries
    assert outcome_parallel.table.stats == outcome_serial.table.stats
    assert outcome_parallel.table.base_refs == outcome_serial.table.base_refs
    assert (
        outcome_parallel.table.original_checksum
        == outcome_serial.table.original_checksum
    )
    assert outcome_parallel.timings == outcome_serial.timings

    restored_serial = serial.restore(outcome_serial.table, verify=True)
    restored_parallel = pipelined.restore(outcome_parallel.table, verify=True)
    assert (
        restored_parallel.image.data.tobytes()
        == restored_serial.image.data.tobytes()
    )
    assert restored_parallel.timings == restored_serial.timings


@settings(max_examples=15)
@given(
    function=st.sampled_from(["Vanilla", "LinAlg", "ImagePro"]),
    aslr=st.booleans(),
    workers=st.integers(min_value=1, max_value=3),
    batch_pages=st.integers(min_value=1, max_value=64),
    depth=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=300, max_value=305),
)
def test_parallel_pipeline_matches_serial(
    suite, function, aslr, workers, batch_pages, depth, seed
):
    parallel = ParallelConfig(workers=workers, batch_pages=batch_pages, depth=depth)
    serial, pipelined = _build_agents(suite, parallel)
    try:
        _assert_equivalent(serial, pipelined, suite.get(function), seed, aslr)
    finally:
        pipelined.close()


def test_default_workers1_pinned_bit_identical(suite):
    """The acceptance-criteria pin: default ParallelConfig == serial."""
    serial, pipelined = _build_agents(suite, ParallelConfig())
    assert pipelined.parallel == ParallelConfig(workers=1, batch_pages=512, depth=4)
    try:
        for function in ("Vanilla", "LinAlg", "ImagePro"):
            for aslr in (False, True):
                _assert_equivalent(serial, pipelined, suite.get(function), 310, aslr)
    finally:
        pipelined.close()


def test_pool_engine_matches_serial_across_profiles(suite):
    """The forked shm pool (workers=2), non-property smoke for CI."""
    serial, pipelined = _build_agents(
        suite, ParallelConfig(workers=2, batch_pages=16, depth=3)
    )
    try:
        for function in ("Vanilla", "LinAlg", "ImagePro"):
            _assert_equivalent(serial, pipelined, suite.get(function), 320, False)
    finally:
        pipelined.close()
