"""Failure injection: unreachable base-page nodes (Section 4.1.3).

When the node holding a dedup sandbox's base pages becomes unreachable,
restores must fail fast and fall back to a cold start, purging the
unrecoverable dedup state; dedup ops must stop choosing base pages on
failed nodes.
"""

from __future__ import annotations

import pytest

from repro.core.agent import DedupAgent, PageKind
from repro.core.costs import CostModel
from repro.core.policy import MedesPolicyConfig
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sandbox.state import SandboxState
from repro.sim.network import PeerUnavailable, RdmaFabric
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0


class TestFabricFailures:
    def test_failed_peer_raises_on_batch_read(self):
        fabric = RdmaFabric()
        fabric.fail_peer(3)
        with pytest.raises(PeerUnavailable):
            fabric.batch_read_ms({3: (5, 4096)}, local_peer=0)
        assert fabric.stats.failed_reads == 1

    def test_local_reads_unaffected_by_failure(self):
        fabric = RdmaFabric()
        fabric.fail_peer(0)
        assert fabric.batch_read_ms({0: (5, 4096)}, local_peer=0) >= 0.0

    def test_restore_peer_heals(self):
        fabric = RdmaFabric()
        fabric.fail_peer(3)
        fabric.restore_peer(3)
        assert fabric.peer_available(3)
        assert fabric.batch_read_ms({3: (1, 4096)}, local_peer=0) > 0.0

    def test_no_cost_charged_on_failure(self):
        fabric = RdmaFabric()
        fabric.fail_peer(3)
        with pytest.raises(PeerUnavailable):
            fabric.batch_read_ms({3: (5, 4096), 4: (5, 4096)}, local_peer=0)
        assert fabric.stats.remote_reads == 0


@pytest.fixture
def agent_harness(linalg_profile):
    """Agent on node 0, base checkpoint on node 1."""
    store = CheckpointStore()
    registry = FingerprintRegistry()
    fabric = RdmaFabric()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=fabric,
        costs=CostModel(),
        content_scale=SCALE,
    )
    base_image = linalg_profile.synthesize(900, content_scale=SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function="LinAlg",
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=linalg_profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    return agent, fabric, linalg_profile


class TestAgentUnderFailure:
    def _dedup(self, agent, profile, seed=901):
        sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
        sandbox.image = profile.synthesize(seed, content_scale=SCALE, executed=True)
        return agent.dedup(sandbox)

    def test_restore_raises_when_base_node_down(self, agent_harness):
        agent, fabric, profile = agent_harness
        outcome = self._dedup(agent, profile)
        fabric.fail_peer(1)
        with pytest.raises(PeerUnavailable):
            agent.restore(outcome.table)

    def test_restore_succeeds_after_heal(self, agent_harness):
        agent, fabric, profile = agent_harness
        outcome = self._dedup(agent, profile)
        fabric.fail_peer(1)
        fabric.restore_peer(1)
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == outcome.table.original_checksum

    def test_dedup_avoids_failed_base_nodes(self, agent_harness):
        agent, fabric, profile = agent_harness
        fabric.fail_peer(1)
        outcome = self._dedup(agent, profile, seed=902)
        stats = outcome.table.stats
        # No patched pages against the unreachable node's bases.
        assert stats.patched_pages == 0
        assert all(
            entry.kind is not PageKind.PATCHED for entry in outcome.table.entries
        )
        # The sandbox still round-trips (everything local/unique/zero).
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == outcome.table.original_checksum


@pytest.fixture
def tiered_harness(linalg_profile):
    """Tiered agent on node 0, ownerless base checkpoint on node 1."""
    from repro.storage.store import TieredCheckpointStore
    from repro.storage.tiers import StorageConfig

    store = TieredCheckpointStore(
        StorageConfig(remote_dram_mb=1024.0, ssd_capacity_mb=1024.0), nodes=2
    )
    registry = FingerprintRegistry()
    fabric = RdmaFabric()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=fabric,
        costs=CostModel(),
        content_scale=SCALE,
        tiering=True,
    )
    base_image = linalg_profile.synthesize(900, content_scale=SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function="LinAlg",
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=linalg_profile.memory_bytes,
        owner_resident=False,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    return agent, store, fabric, checkpoint, linalg_profile


class TestTieredAgentUnderFailure:
    """SSD residency shares its node's failure domain; the far-memory
    pool has none — restores must fall back exactly like the DRAM case."""

    def _dedup(self, agent, profile, seed=901):
        sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
        sandbox.image = profile.synthesize(seed, content_scale=SCALE, executed=True)
        return agent.dedup(sandbox)

    def test_ssd_pages_on_failed_node_raise_like_dram(self, tiered_harness):
        from repro.storage.tiers import StorageTier, TierAccount

        agent, store, fabric, checkpoint, profile = tiered_harness
        outcome = self._dedup(agent, profile)
        # Force the demotion onto node 1's SSD (no far-memory room).
        store.remote_dram = TierAccount(0)
        move = store.demote_checkpoint(checkpoint)
        assert move is not None and move.tier is StorageTier.LOCAL_SSD
        fabric.fail_peer(1)
        remote_reads_before = fabric.stats.remote_reads
        with pytest.raises(PeerUnavailable):
            agent.restore(outcome.table)
        # Fail-fast: no cost charged, exactly like the DRAM-resident case.
        assert fabric.stats.remote_reads == remote_reads_before
        assert fabric.stats.failed_reads >= 1

    def test_remote_dram_pages_survive_node_failure(self, tiered_harness):
        from repro.storage.tiers import StorageTier

        agent, store, fabric, checkpoint, profile = tiered_harness
        outcome = self._dedup(agent, profile)
        move = store.demote_checkpoint(checkpoint)
        assert move is not None and move.tier is StorageTier.REMOTE_DRAM
        fabric.fail_peer(1)
        # The disaggregated pool is not on node 1: the restore proceeds.
        agent.base_page_cache.clear()
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == outcome.table.original_checksum

    def test_ssd_restore_succeeds_after_heal(self, tiered_harness):
        from repro.storage.tiers import TierAccount

        agent, store, fabric, checkpoint, profile = tiered_harness
        outcome = self._dedup(agent, profile)
        store.remote_dram = TierAccount(0)
        store.demote_checkpoint(checkpoint)
        fabric.fail_peer(1)
        fabric.restore_peer(1)
        agent.base_page_cache.clear()
        restored = agent.restore(outcome.table, verify=True)
        assert restored.image.checksum() == outcome.table.original_checksum


class TestPlatformFallback:
    def test_cold_start_fallback_and_purge(self):
        """End to end: dedup sandbox whose base node dies mid-run."""
        suite = FunctionBenchSuite.subset(["Vanilla"])
        config = ClusterConfig(
            nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=4,
            verify_restores=True,
        )
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla"), (1.0, "Vanilla"), (60_000.0, "Vanilla")]
        )
        platform = build_platform(
            PlatformKind.MEDES,
            config,
            suite,
            medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
        )
        # Fail every remote peer once the dedup state exists (t=30 s),
        # so the dedup start at t=60 s cannot read remote base pages.
        def fail_all_remotes():
            for node in platform.nodes:
                platform.fabric.fail_peer(node.node_id)

        platform.sim.at(30_000.0, fail_all_remotes)
        report = platform.run(trace)

        final = report.metrics.requests[2]
        assert final.completion_ms is not None
        # Either the dedup table was entirely node-local (restore fine)
        # or the platform fell back; in the fallback case the request is
        # a cold start and no dedup sandbox remains.
        if final.start_type is StartType.COLD:
            for node in platform.nodes:
                for sandbox in node.sandboxes.values():
                    assert sandbox.state is not SandboxState.DEDUP
        for checkpoint in platform.store:
            assert checkpoint.refcount >= 0

    def test_cold_start_fallback_with_tiering(self):
        """The tiered platform falls back to cold identically when the
        base node dies — SSD residency shares the node's failure domain."""
        suite = FunctionBenchSuite.subset(["Vanilla"])
        config = ClusterConfig(
            nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=4,
            verify_restores=True, checkpoint_tiering=True,
        )
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla"), (1.0, "Vanilla"), (60_000.0, "Vanilla")]
        )
        platform = build_platform(
            PlatformKind.MEDES,
            config,
            suite,
            medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
        )

        def fail_all_remotes():
            for node in platform.nodes:
                platform.fabric.fail_peer(node.node_id)

        platform.sim.at(30_000.0, fail_all_remotes)
        report = platform.run(trace)

        final = report.metrics.requests[2]
        assert final.completion_ms is not None
        if final.start_type is StartType.COLD:
            for node in platform.nodes:
                for sandbox in node.sandboxes.values():
                    assert sandbox.state is not SandboxState.DEDUP
        for checkpoint in platform.store:
            assert checkpoint.refcount >= 0
        # Tier accounting never underflowed or leaked.
        from repro.storage.store import TieredCheckpointStore

        assert isinstance(platform.store, TieredCheckpointStore)
        assert platform.store.remote_dram.used_bytes >= 0
