"""Property-based end-to-end invariants of the platform.

Hypothesis generates small arbitrary traces; after every run, the
platform must satisfy the core invariants regardless of the arrival
pattern: every request completes exactly once, refcounts balance,
memory accounting is consistent, and restores are byte-exact.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

FUNCTIONS = ("Vanilla", "LinAlg", "RNNModel")

arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=120_000.0),
        st.sampled_from(FUNCTIONS),
    ),
    min_size=1,
    max_size=12,
)


def run_platform(arrivals, *, node_memory_mb=256.0):
    suite = FunctionBenchSuite.subset(list(FUNCTIONS))
    trace = Trace.from_arrivals(arrivals)
    config = ClusterConfig(
        nodes=2,
        node_memory_mb=node_memory_mb,
        content_scale=1.0 / 256.0,
        seed=5,
        verify_restores=True,
    )
    platform = build_platform(
        PlatformKind.MEDES,
        config,
        suite,
        medes=MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0),
    )
    report = platform.run(trace)
    return platform, report


class TestEndToEndInvariants:
    @settings(max_examples=15, deadline=None)
    @given(arrival_lists)
    def test_all_requests_complete_once(self, arrivals):
        _, report = run_platform(arrivals)
        assert len(report.metrics.requests) == len(arrivals)
        for record in report.metrics.requests.values():
            assert record.completion_ms is not None
            assert record.completion_ms >= record.arrival_ms
            assert record.start_type in StartType

    @settings(max_examples=15, deadline=None)
    @given(arrival_lists)
    def test_refcounts_balance(self, arrivals):
        platform, _ = run_platform(arrivals)
        expected: Counter[int] = Counter()
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    expected.update(sandbox.dedup_table.base_refs)
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)
            assert checkpoint.refcount >= 0

    @settings(max_examples=15, deadline=None)
    @given(arrival_lists)
    def test_node_accounting_consistent(self, arrivals):
        platform, _ = run_platform(arrivals)
        for node in platform.nodes:
            expected = sum(s.memory_bytes() for s in node.sandboxes.values())
            expected += sum(c.memory_bytes() for c in node.checkpoints.values())
            assert node.used_bytes() == expected

    @settings(max_examples=10, deadline=None)
    @given(arrival_lists)
    def test_pressured_runs_also_complete(self, arrivals):
        """Even a pool fitting ~1 large sandbox never loses requests."""
        _, report = run_platform(arrivals, node_memory_mb=100.0)
        assert all(
            r.completion_ms is not None for r in report.metrics.requests.values()
        )

    @settings(max_examples=10, deadline=None)
    @given(arrival_lists)
    def test_e2e_at_least_exec_plus_startup(self, arrivals):
        _, report = run_platform(arrivals)
        for record in report.metrics.requests.values():
            floor = record.exec_ms + record.startup_ms + record.queued_ms
            assert record.e2e_ms >= floor - 1e-6
