"""Advanced controller behaviours: dedup abort, starvation, per-function policy."""

from __future__ import annotations

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.state import SandboxState
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0


def config(**overrides) -> ClusterConfig:
    base = dict(
        nodes=1,
        node_memory_mb=512.0,
        content_scale=SCALE,
        seed=9,
        verify_restores=True,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def medes(**overrides) -> MedesPolicyConfig:
    base = dict(idle_period_ms=5_000.0, alpha=25.0)
    base.update(overrides)
    return MedesPolicyConfig(**base)


@pytest.fixture(scope="module")
def pair_suite():
    return FunctionBenchSuite.subset(["Vanilla", "LinAlg"])


class TestDedupAbort:
    def _abort_trace(self) -> Trace:
        # Two sandboxes; the second one's dedup op (starting ~6-7 s after
        # idle) is interrupted by a burst of requests needing both.
        # Timing: both sandboxes go idle ~0.7-1.7 s in; idle expiry at
        # ~5.7/6.7 s turns one into a base and starts the other's dedup
        # op (~1.3 s at 5.7-7.0 s), so t=6.5 s lands mid-DEDUPING.
        return Trace.from_arrivals(
            [
                (0.0, "Vanilla"),
                (1.0, "Vanilla"),
                (6_500.0, "Vanilla"),
                (6_501.0, "Vanilla"),
            ]
        )

    def test_request_aborts_in_flight_dedup(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        report = platform.run(self._abort_trace())
        # With abort enabled, the burst at t=6.5 s is served without any
        # extra cold start even though a dedup op was in flight.
        assert report.metrics.cold_starts() == 2
        late = [r for r in report.metrics.requests.values() if r.arrival_ms >= 6_000.0]
        assert all(r.start_type is StartType.WARM for r in late)

    def test_without_abort_burst_pays_cold_start(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES,
            config(enable_dedup_abort=False),
            pair_suite,
            medes=medes(),
        )
        report = platform.run(self._abort_trace())
        # The DEDUPING sandbox is unavailable: one extra cold start.
        assert report.metrics.cold_starts() == 3

    def test_abort_rolls_back_refcounts(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        platform.run(self._abort_trace())
        expected: dict[int, int] = {}
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    for cid, count in sandbox.dedup_table.base_refs.items():
                        expected[cid] = expected.get(cid, 0) + count
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)


class TestStarvationPath:
    def test_starving_request_evicts_unpinned_base(self):
        """A request that cannot fit otherwise evicts an idle base."""
        suite = FunctionBenchSuite.subset(["RNNModel", "ModelTrain"])
        # Node fits a single large sandbox; the RNNModel sandbox becomes
        # a base (first dedup attempt, empty registry) and then blocks
        # the ModelTrain spawn until the starvation path fires.
        cluster = config(node_memory_mb=150.0)
        trace = Trace.from_arrivals([(0.0, "RNNModel"), (20_000.0, "ModelTrain")])
        platform = build_platform(PlatformKind.MEDES, cluster, suite, medes=medes())
        report = platform.run(trace)
        records = report.metrics.requests
        assert records[1].completion_ms is not None
        # It waited for the starvation window, not for a keep-alive.
        assert records[1].queued_ms < 60_000.0

    def test_pinned_base_survives_starvation(self, pair_suite):
        """A base checkpoint with live dedup references is never evicted."""
        cluster = config(node_memory_mb=80.0)
        trace = Trace.from_arrivals(
            [
                (0.0, "Vanilla"),
                (1.0, "Vanilla"),
                (40_000.0, "LinAlg"),  # needs eviction
                (80_000.0, "Vanilla"),
            ]
        )
        platform = build_platform(PlatformKind.MEDES, cluster, pair_suite, medes=medes())
        platform.run(trace)
        for checkpoint in platform.store:
            if checkpoint.pinned:
                # Every pinned checkpoint must still be resident somewhere.
                node = platform.nodes[checkpoint.node_id]
                assert checkpoint.checkpoint_id in node.checkpoints


class TestPerFunctionPolicy:
    def test_critical_function_not_deduplicated(self):
        """Section 5.3: a tight per-function alpha keeps it warm while
        best-effort functions deduplicate."""
        suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
        policy = medes(alpha=25.0, per_function_alpha={"Vanilla": 1.01})
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla"), (1.0, "Vanilla"), (2.0, "LinAlg"), (3.0, "LinAlg"),
             (4.0, "Vanilla"), (5.0, "LinAlg")]
        )
        platform = build_platform(PlatformKind.MEDES, config(), suite, medes=policy)
        platform.sim.run_until(0)  # no-op; run below
        report = platform.run(trace)
        dedup_functions = {op.function for op in report.metrics.dedup_ops}
        assert "Vanilla" not in dedup_functions

    def test_alpha_for_validation(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            MedesPolicyConfig(per_function_alpha={"X": 0.5})
