"""Advanced controller behaviours: dedup abort, starvation, per-function policy."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.state import SandboxState
from repro.sim.network import PeerUnavailable
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0


def config(**overrides) -> ClusterConfig:
    base = dict(
        nodes=1,
        node_memory_mb=512.0,
        content_scale=SCALE,
        seed=9,
        verify_restores=True,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def medes(**overrides) -> MedesPolicyConfig:
    base = dict(idle_period_ms=5_000.0, alpha=25.0)
    base.update(overrides)
    return MedesPolicyConfig(**base)


@pytest.fixture(scope="module")
def pair_suite():
    return FunctionBenchSuite.subset(["Vanilla", "LinAlg"])


class TestDedupAbort:
    def _abort_trace(self) -> Trace:
        # Two sandboxes; the second one's dedup op is interrupted by a
        # burst of requests needing both.  Timing: both sandboxes go
        # idle ~0.7-1.7 s in; idle expiry at ~5.7 s turns one into a
        # base (busy checkpointing/registering until ~6.86 s) and starts
        # the other's dedup op (~1.3 s, 5.70-7.03 s), so t=6.95 s lands
        # after the demarcation completes but mid-DEDUPING.
        return Trace.from_arrivals(
            [
                (0.0, "Vanilla"),
                (1.0, "Vanilla"),
                (6_950.0, "Vanilla"),
                (6_951.0, "Vanilla"),
            ]
        )

    def test_request_aborts_in_flight_dedup(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        report = platform.run(self._abort_trace())
        # With abort enabled, the burst at t=6.5 s is served without any
        # extra cold start even though a dedup op was in flight.
        assert report.metrics.cold_starts() == 2
        late = [r for r in report.metrics.requests.values() if r.arrival_ms >= 6_000.0]
        assert all(r.start_type is StartType.WARM for r in late)

    def test_without_abort_burst_pays_cold_start(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES,
            config(enable_dedup_abort=False),
            pair_suite,
            medes=medes(),
        )
        report = platform.run(self._abort_trace())
        # The DEDUPING sandbox is unavailable: one extra cold start.
        assert report.metrics.cold_starts() == 3

    def test_abort_rolls_back_refcounts(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        platform.run(self._abort_trace())
        expected: Counter[int] = Counter()
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    expected.update(sandbox.dedup_table.base_refs)
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)


class TestPurgeDuringDedup:
    """Regression: purging a DEDUPING sandbox used to leak its pending
    dedup timer and the base refcounts the in-flight op had acquired."""

    def _trace(self) -> Trace:
        return Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "Vanilla")])

    def test_purge_cancels_pending_dedup_and_releases_refs(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        purged: list = []

        def purge_deduping() -> None:
            # t=6.0 s: the idle-expired sandbox's dedup op is in flight
            # (5.70-7.03 s, see TestDedupAbort._abort_trace timing).
            for node in platform.nodes:
                for sandbox in list(node.sandboxes.values()):
                    if sandbox.state is SandboxState.DEDUPING:
                        platform.controller._purge(sandbox, reason="test-eviction")
                        purged.append(sandbox)

        platform.sim.at(6_000.0, purge_deduping)
        platform.run(self._trace())

        assert len(purged) == 1
        assert purged[0].state is SandboxState.PURGED
        assert purged[0].dedup_table is None
        # The stale finish_dedup timer must be gone, not just cancelled.
        assert platform.controller._pending_dedups == {}
        # Every refcount the aborted op acquired was rolled back: only
        # resident dedup tables may hold references now.
        expected: Counter[int] = Counter()
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    expected.update(sandbox.dedup_table.base_refs)
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)


class TestMultiCandidateDispatch:
    def test_dispatch_tries_next_dedup_candidate(self, pair_suite):
        """Regression: when the best dedup candidate's base pages are
        unreachable, dispatch must try the remaining dedup sandboxes
        before falling back to a cold start."""
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        agent = platform.agents[0]
        real_restore = agent.restore
        calls = {"n": 0}

        def flaky_restore(table, *, verify=False):
            calls["n"] += 1
            if calls["n"] == 1:
                raise PeerUnavailable(1)
            return real_restore(table, verify=verify)

        platform.sim.at(11_999.0, lambda: setattr(agent, "restore", flaky_restore))
        # Three sandboxes; after idle expiry one demarcates as base and
        # two become DEDUP.  At t=12.0 s the base owner serves request 3
        # warm; request 4 must be served from a dedup sandbox even
        # though the first candidate fails and is purged.
        trace = Trace.from_arrivals(
            [
                (0.0, "Vanilla"),
                (1.0, "Vanilla"),
                (2.0, "Vanilla"),
                (12_000.0, "Vanilla"),
                (12_000.5, "Vanilla"),
            ]
        )
        report = platform.run(trace)
        records = report.metrics.requests
        assert calls["n"] == 2  # first candidate failed, second served
        assert records[4].start_type is StartType.DEDUP
        # No extra cold start beyond the three initial ones.
        assert report.metrics.cold_starts() == 3
        # The broken candidate is gone.
        remaining = platform.controller._function_sandboxes("Vanilla")
        assert len(remaining) == 2


class TestBaseOpAccounting:
    def test_base_demarcation_charged_and_recorded(self, pair_suite):
        platform = build_platform(
            PlatformKind.MEDES, config(), pair_suite, medes=medes()
        )
        report = platform.run(
            Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "Vanilla")])
        )
        assert len(report.metrics.base_ops) == report.metrics.bases_created == 1
        record = report.metrics.base_ops[0]
        assert record.function == "Vanilla"
        # Both phases carry real cost now (register_ms was dead code).
        assert record.checkpoint_ms > 0
        assert record.register_ms > 0
        assert record.total_ms == record.checkpoint_ms + record.register_ms
        costs = platform.controller.config.costs
        assert record.checkpoint_ms >= costs.checkpoint_fixed_ms


class TestStarvationPath:
    def test_starving_request_evicts_unpinned_base(self):
        """A request that cannot fit otherwise evicts an idle base."""
        suite = FunctionBenchSuite.subset(["RNNModel", "ModelTrain"])
        # Node fits a single large sandbox; the RNNModel sandbox becomes
        # a base (first dedup attempt, empty registry) and then blocks
        # the ModelTrain spawn until the starvation path fires.
        cluster = config(node_memory_mb=150.0)
        trace = Trace.from_arrivals([(0.0, "RNNModel"), (20_000.0, "ModelTrain")])
        platform = build_platform(PlatformKind.MEDES, cluster, suite, medes=medes())
        report = platform.run(trace)
        records = report.metrics.requests
        assert records[1].completion_ms is not None
        # It waited for the starvation window, not for a keep-alive.
        assert records[1].queued_ms < 60_000.0

    def test_pinned_base_survives_starvation(self, pair_suite):
        """A base checkpoint with live dedup references is never evicted."""
        cluster = config(node_memory_mb=80.0)
        trace = Trace.from_arrivals(
            [
                (0.0, "Vanilla"),
                (1.0, "Vanilla"),
                (40_000.0, "LinAlg"),  # needs eviction
                (80_000.0, "Vanilla"),
            ]
        )
        platform = build_platform(PlatformKind.MEDES, cluster, pair_suite, medes=medes())
        platform.run(trace)
        for checkpoint in platform.store:
            if checkpoint.pinned:
                # Every pinned checkpoint must still be resident somewhere.
                node = platform.nodes[checkpoint.node_id]
                assert checkpoint.checkpoint_id in node.checkpoints


class TestPerFunctionPolicy:
    def test_critical_function_not_deduplicated(self):
        """Section 5.3: a tight per-function alpha keeps it warm while
        best-effort functions deduplicate."""
        suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
        policy = medes(alpha=25.0, per_function_alpha={"Vanilla": 1.01})
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla"), (1.0, "Vanilla"), (2.0, "LinAlg"), (3.0, "LinAlg"),
             (4.0, "Vanilla"), (5.0, "LinAlg")]
        )
        platform = build_platform(PlatformKind.MEDES, config(), suite, medes=policy)
        platform.sim.run_until(0)  # no-op; run below
        report = platform.run(trace)
        dedup_functions = {op.function for op in report.metrics.dedup_ops}
        assert "Vanilla" not in dedup_functions

    def test_alpha_for_validation(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            MedesPolicyConfig(per_function_alpha={"X": 0.5})
