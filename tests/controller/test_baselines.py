"""Tests for the keep-alive baseline policies."""

from __future__ import annotations

import pytest

from repro.controller.baselines import (
    ADAPTIVE_MAX_MS,
    ADAPTIVE_MIN_MS,
    AdaptiveKeepAlivePolicy,
    FixedKeepAlivePolicy,
)
from repro.core.policy import Decision


class TestFixedKeepAlive:
    def test_constant_window(self):
        policy = FixedKeepAlivePolicy(600_000.0)
        assert policy.keep_alive_ms("any", 0.0) == 600_000.0
        assert policy.keep_alive_ms("other", 1e9) == 600_000.0

    def test_never_dedups(self):
        policy = FixedKeepAlivePolicy()
        assert policy.idle_period_ms("f") is None
        assert policy.decide_idle("f", None) is Decision.KEEP_WARM
        with pytest.raises(RuntimeError):
            policy.keep_dedup_ms("f")

    def test_no_prewarm(self):
        assert FixedKeepAlivePolicy().prewarm_delay_ms("f", 0.0) is None

    def test_name_includes_period(self):
        assert FixedKeepAlivePolicy(300_000.0).name == "fixed-ka-5min"

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            FixedKeepAlivePolicy(0.0)


class TestAdaptiveKeepAlive:
    def test_default_until_enough_samples(self):
        policy = AdaptiveKeepAlivePolicy(default_keep_alive_ms=123_000.0)
        policy.on_arrival("f", 0.0)
        policy.on_arrival("f", 60_000.0)
        assert policy.keep_alive_ms("f", 60_000.0) == 123_000.0

    def test_window_tracks_interarrivals(self):
        policy = AdaptiveKeepAlivePolicy()
        for i in range(20):
            policy.on_arrival("f", i * 120_000.0)  # 2-minute gaps
        window = policy.keep_alive_ms("f", 20 * 120_000.0)
        # p75 * margin of a 2-minute IT distribution: a few minutes.
        assert 60_000.0 <= window <= 4 * 120_000.0

    def test_window_bounds_respected(self):
        policy = AdaptiveKeepAlivePolicy()
        for i in range(20):
            policy.on_arrival("tight", i * 100.0)  # 100 ms gaps
        assert policy.keep_alive_ms("tight", 2_000.0) == ADAPTIVE_MIN_MS
        policy2 = AdaptiveKeepAlivePolicy()
        for i in range(20):
            policy2.on_arrival("sparse", i * 3_600_000.0)  # hourly
        assert policy2.keep_alive_ms("sparse", 1e9) == ADAPTIVE_MAX_MS

    def test_functions_independent(self):
        policy = AdaptiveKeepAlivePolicy()
        for i in range(20):
            policy.on_arrival("a", i * 60_000.0)
        assert policy.keep_alive_ms("b", 0.0) == policy.default_keep_alive_ms

    def test_never_dedups(self):
        policy = AdaptiveKeepAlivePolicy()
        assert policy.idle_period_ms("f") is None
        assert policy.decide_idle("f", None) is Decision.KEEP_WARM


class TestAdaptivePrewarm:
    def test_regular_function_gets_prewarm(self):
        policy = AdaptiveKeepAlivePolicy()
        for i in range(20):
            policy.on_arrival("cron", i * 300_000.0)  # exact 5-minute timer
        last = 19 * 300_000.0
        delay = policy.prewarm_delay_ms("cron", last + 60_000.0)
        assert delay is not None
        # Fires ~2 s before the predicted next arrival.
        predicted = last + 300_000.0
        assert (last + 60_000.0) + delay == pytest.approx(predicted - 2_000.0, rel=0.05)

    def test_irregular_function_not_prewarmed(self):
        policy = AdaptiveKeepAlivePolicy()
        gaps = [1_000.0, 600_000.0, 5_000.0, 900_000.0, 2_000.0, 700_000.0, 1_000.0]
        t = 0.0
        for gap in gaps:
            policy.on_arrival("bursty", t)
            t += gap
        assert policy.prewarm_delay_ms("bursty", t) is None

    def test_insufficient_history_not_prewarmed(self):
        policy = AdaptiveKeepAlivePolicy()
        policy.on_arrival("new", 0.0)
        assert policy.prewarm_delay_ms("new", 1_000.0) is None

    def test_past_prediction_not_prewarmed(self):
        policy = AdaptiveKeepAlivePolicy()
        for i in range(20):
            policy.on_arrival("cron", i * 300_000.0)
        far_future = 19 * 300_000.0 + 10 * 300_000.0
        assert policy.prewarm_delay_ms("cron", far_future) is None
