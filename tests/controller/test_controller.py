"""Integration tests for the cluster controller.

These drive the full platform (simulator + nodes + agents + registry)
with small hand-built traces and assert the paper's workflows: dispatch
preference, the dedup lifecycle, base management, eviction and queueing.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.state import SandboxState
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

SCALE = 1.0 / 256.0


def config(**overrides) -> ClusterConfig:
    base = dict(
        nodes=2,
        node_memory_mb=512.0,
        content_scale=SCALE,
        seed=7,
        verify_restores=True,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def medes_config(**overrides) -> MedesPolicyConfig:
    base = dict(
        idle_period_ms=5_000.0,
        keep_alive_ms=300_000.0,
        keep_dedup_ms=300_000.0,
        # Loose enough that the optimizer allows dedup starts for these
        # small sandbox populations (D* > 0 at C = 2).
        alpha=25.0,
    )
    base.update(overrides)
    return MedesPolicyConfig(**base)


def run_medes(trace, suite, cluster=None, policy=None):
    platform = build_platform(
        PlatformKind.MEDES, cluster or config(), suite, medes=policy or medes_config()
    )
    report = platform.run(trace)
    return platform, report


@pytest.fixture(scope="module")
def pair_suite():
    return FunctionBenchSuite.subset(["Vanilla", "LinAlg"])


class TestDispatch:
    def test_first_request_is_cold(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla")])
        _, report = run_medes(trace, pair_suite)
        record = report.metrics.requests[0]
        assert record.start_type is StartType.COLD
        assert record.startup_ms >= pair_suite.get("Vanilla").cold_start_ms

    def test_second_request_reuses_warm(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (2_000.0, "Vanilla")])
        _, report = run_medes(trace, pair_suite)
        assert report.metrics.requests[1].start_type is StartType.WARM

    def test_concurrent_requests_spawn_separately(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "Vanilla")])
        _, report = run_medes(trace, pair_suite)
        assert report.metrics.cold_starts() == 2

    def test_functions_do_not_share_sandboxes(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (2_000.0, "LinAlg")])
        _, report = run_medes(trace, pair_suite)
        assert report.metrics.cold_starts() == 2


class TestDedupLifecycle:
    def _dedup_trace(self) -> Trace:
        # Two early sandboxes; long idle; then one request back.
        return Trace.from_arrivals(
            [
                (0.0, "Vanilla"),
                (1.0, "Vanilla"),
                (120_000.0, "Vanilla"),
            ]
        )

    def test_idle_sandbox_becomes_base_then_dedup(self, pair_suite):
        platform, report = run_medes(self._dedup_trace(), pair_suite)
        assert report.metrics.bases_created >= 1
        assert len(report.metrics.dedup_ops) >= 1

    def test_dedup_start_served_from_dedup_sandbox(self, pair_suite):
        _, report = run_medes(self._dedup_trace(), pair_suite)
        final = report.metrics.requests[2]
        assert final.start_type in (StartType.DEDUP, StartType.WARM)
        if final.start_type is StartType.DEDUP:
            assert len(report.metrics.restore_ops) == 1
            assert final.startup_ms < pair_suite.get("Vanilla").cold_start_ms

    def test_refcounts_consistent_at_end(self, pair_suite):
        platform, _ = run_medes(self._dedup_trace(), pair_suite)
        expected: Counter[int] = Counter()
        for node in platform.nodes:
            for sandbox in node.sandboxes.values():
                if sandbox.dedup_table is not None:
                    expected.update(sandbox.dedup_table.base_refs)
        for checkpoint in platform.store:
            assert checkpoint.refcount == expected.get(checkpoint.checkpoint_id, 0)

    def test_node_accounting_matches_entities(self, pair_suite):
        platform, _ = run_medes(self._dedup_trace(), pair_suite)
        for node in platform.nodes:
            expected = sum(s.memory_bytes() for s in node.sandboxes.values())
            expected += sum(c.memory_bytes() for c in node.checkpoints.values())
            assert node.used_bytes() == expected

    def test_dedup_sandbox_smaller_than_warm(self, pair_suite):
        platform, report = run_medes(self._dedup_trace(), pair_suite)
        for op in report.metrics.dedup_ops:
            full = platform.suite.get(op.function).memory_bytes
            assert op.retained_full_bytes < full


class TestKeepAliveAndKeepDedup:
    def test_warm_sandbox_purged_after_keep_alive(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (400_000.0, "Vanilla")])
        policy = medes_config(keep_alive_ms=60_000.0, idle_period_ms=600_000.0)
        _, report = run_medes(trace, pair_suite, policy=policy)
        # The sandbox expired before the second request: cold again.
        assert report.metrics.requests[1].start_type is StartType.COLD

    def test_dedup_sandbox_purged_after_keep_dedup(self, pair_suite):
        trace = Trace.from_arrivals(
            [(0.0, "Vanilla"), (1.0, "Vanilla"), (500_000.0, "Vanilla")]
        )
        policy = medes_config(keep_dedup_ms=60_000.0)
        _, report = run_medes(trace, pair_suite, policy=policy)
        # Dedup state expired long before the last request.
        assert report.metrics.requests[2].start_type is StartType.COLD


class TestMemoryPressure:
    def test_eviction_frees_space_for_spawn(self):
        suite = FunctionBenchSuite.subset(["RNNModel", "ModelTrain"])
        # One node fitting only one large sandbox at a time.
        cluster = config(nodes=1, node_memory_mb=150.0)
        trace = Trace.from_arrivals(
            [(0.0, "RNNModel"), (10_000.0, "ModelTrain"), (20_000.0, "RNNModel"),
             (30_000.0, "ModelTrain")]
        )
        platform, report = run_medes(trace, suite, cluster=cluster)
        assert report.metrics.evictions > 0
        assert all(
            r.completion_ms is not None for r in report.metrics.requests.values()
        )

    def test_capacity_never_exceeded_steady_state(self):
        suite = FunctionBenchSuite.subset(["Vanilla", "LinAlg"])
        cluster = config(nodes=1, node_memory_mb=128.0)
        arrivals = [(i * 4_000.0, "Vanilla" if i % 2 else "LinAlg") for i in range(20)]
        platform, report = run_medes(Trace.from_arrivals(arrivals), suite, cluster=cluster)
        # After the run drains, the node is within its soft limit.
        for node in platform.nodes:
            assert node.used_bytes() <= node.capacity_bytes

    def test_oversized_requests_queue_and_complete(self):
        suite = FunctionBenchSuite.subset(["RNNModel"])
        cluster = config(nodes=1, node_memory_mb=100.0)  # fits one sandbox
        trace = Trace.from_arrivals([(0.0, "RNNModel"), (1.0, "RNNModel")])
        _, report = run_medes(trace, suite, cluster=cluster)
        records = list(report.metrics.requests.values())
        assert all(r.completion_ms is not None for r in records)
        # The second request had to wait for the first sandbox.
        assert max(r.queued_ms for r in records) > 0


class TestBaseManagement:
    def test_base_sandbox_not_deduplicated(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (60_000.0, "Vanilla")])
        platform, report = run_medes(trace, pair_suite)
        bases = [
            s
            for node in platform.nodes
            for s in node.sandboxes.values()
            if s.is_base
        ]
        for base in bases:
            assert base.state in (SandboxState.WARM, SandboxState.RUNNING)

    def test_base_checkpoint_registered_in_registry(self, pair_suite):
        trace = Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "Vanilla"), (60_000.0, "Vanilla")])
        platform, report = run_medes(trace, pair_suite)
        if report.metrics.bases_created:
            assert platform.registry.digest_count > 0


class TestPrewarming:
    def test_adaptive_platform_prewarms_regular_traffic(self):
        suite = FunctionBenchSuite.subset(["Vanilla"])
        # A strict 2-minute timer function with a short adaptive window.
        arrivals = [(i * 120_000.0, "Vanilla") for i in range(12)]
        platform = build_platform(
            PlatformKind.ADAPTIVE_KEEP_ALIVE, config(), suite
        )
        report = platform.run(Trace.from_arrivals(arrivals))
        warm = report.metrics.start_counts()[StartType.WARM]
        assert warm >= 8  # pre-warming keeps the timer function warm
