"""The indexed control plane must not scan what it claims not to scan.

Each test wires a tripwire or counter into the structure the pre-index
code used to iterate — resident sandboxes for memory sums, the
per-function population for dispatch and counting, the request table
for the drain check, the event heap for starvation retries — and shows
the indexed path never touches it.  Together with
``test_control_plane_equivalence`` (same answers) these pin the PR's
claim: same behaviour, O(1) work.
"""

from __future__ import annotations

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Request, Trace

SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)


def build(config_overrides=None, functions=("Vanilla", "LinAlg")):
    suite = FunctionBenchSuite.subset(list(functions))
    overrides = dict(nodes=2, node_memory_mb=512.0, content_scale=SCALE, seed=3)
    overrides.update(config_overrides or {})
    config = ClusterConfig(**overrides)
    return build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)


class _Tripwire:
    """Raises on any use; stands in for a structure that must be idle."""

    def __init__(self, name: str):
        self.name = name

    def _trip(self, *args, **kwargs):
        raise AssertionError(f"indexed path touched {self.name}")

    __iter__ = __len__ = __getitem__ = __call__ = _trip

    def values(self, *a, **k):
        self._trip()

    def items(self, *a, **k):
        self._trip()


class _ValuesCountingDict(dict):
    """A dict that counts full-table iterations."""

    values_calls = 0

    def values(self):
        self.values_calls += 1
        return super().values()


class TestNoResidentScans:
    def test_used_bytes_without_touching_residents(self):
        """fits/free_bytes/used_bytes serve from the counter: they must
        work even when every resident's memory_bytes() is booby-trapped."""
        platform = build()
        platform.run(Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "LinAlg")]))
        for node in platform.nodes:
            assert node.sandboxes, "need residents for the test to mean anything"
        for sandbox_holder in platform.nodes:
            for sandbox in sandbox_holder.sandboxes.values():
                sandbox.memory_bytes = _Tripwire("Sandbox.memory_bytes")
        total = 0
        for node in platform.nodes:
            total += node.used_bytes()
            node.fits(1)
            node.free_bytes()
        assert total == platform.controller.used_bytes() > 0

    def test_counts_without_population_scan(self):
        """live_counts/sandbox_census/build_view never iterate the
        per-function sandbox population."""
        platform = build()
        platform.run(Trace.from_arrivals([(0.0, "Vanilla"), (1.0, "LinAlg")]))
        controller = platform.controller
        controller._by_function = _Tripwire("controller._by_function")
        live, dedup = controller.live_counts()
        assert sum(live.values()) > 0
        warm, dedup_census, total = controller.sandbox_census()
        assert total > 0
        view = controller.build_view()
        assert view.used_bytes > 0


class TestNoDispatchScan:
    def test_warm_dispatch_without_function_scan(self):
        """Dispatching to an idle warm sandbox reads the candidate index,
        not the whole per-function population."""
        platform = build()
        platform.run(Trace.from_arrivals([(0.0, "Vanilla")]))
        controller = platform.controller
        assert controller._index.idle_warm.get("Vanilla"), "no idle warm sandbox"
        controller._function_sandboxes = _Tripwire("_function_sandboxes")
        request = Request(request_id=999, function="Vanilla", arrival_ms=platform.sim.now)
        controller.submit(request)
        record = platform.metrics.requests[999]
        assert record.start_type is StartType.WARM


class TestNoDrainScan:
    def test_drain_check_is_counter_not_scan(self):
        """Platform.run's drain loop consults the outstanding-requests
        counter; the request table is never iterated during the run."""
        platform = build()
        counting = _ValuesCountingDict()
        platform.metrics.requests = counting
        trace = Trace.from_arrivals(
            [(float(i * 500), "Vanilla") for i in range(8)]
        )
        platform.run(trace)
        assert len(counting) == 8
        assert counting.values_calls == 0
        assert platform.metrics.outstanding_requests == 0


class TestCoalescedStarvationTimer:
    def _burst_platform(self, indexed: bool):
        # One node that fits a single big sandbox: a burst of arrivals
        # all queue behind it.
        platform = build(
            config_overrides=dict(
                nodes=1,
                node_memory_mb=100.0,
                indexed_control_plane=indexed,
                seed=5,
            ),
            functions=("RNNModel",),
        )
        trace = Trace.from_arrivals([(float(i), "RNNModel") for i in range(20)])
        return platform, trace

    def test_single_timer_for_many_queued_requests(self):
        platform, trace = self._burst_platform(indexed=True)
        probes = {}

        def probe():
            controller = platform.controller
            probes["queued"] = len(controller._queue)
            probes["deadlines"] = len(controller._starvation_deadlines)
            probes["pending_events"] = platform.sim.pending_events
            timer = controller._starvation_timer
            probes["armed"] = timer is not None and timer.pending

        platform.sim.at(100.0, probe)
        platform.run(trace)
        assert probes["queued"] >= 15
        # Every queued request holds a slot in the deadline deque...
        assert probes["deadlines"] >= probes["queued"]
        # ...but only ONE starvation event is armed on the heap.
        assert probes["armed"]
        legacy_platform, legacy_trace = self._burst_platform(indexed=False)
        legacy_probe = {}
        legacy_platform.sim.at(
            100.0,
            lambda: legacy_probe.update(pending=legacy_platform.sim.pending_events),
        )
        legacy_platform.run(legacy_trace)
        # The legacy path had one retry event per queued request on the
        # heap at the same instant; the coalesced timer removes all but
        # one of them.
        assert probes["pending_events"] <= legacy_probe["pending"] - (
            probes["queued"] - 1
        )


class TestIndexInvariants:
    """After a full run the indexes still mirror a fresh scan."""

    def _run(self):
        platform = build(
            config_overrides=dict(nodes=2, node_memory_mb=256.0, seed=8),
            functions=("Vanilla", "LinAlg", "FeatureGen"),
        )
        arrivals = [(float(i * 700), fn) for i, fn in enumerate(
            ["Vanilla", "LinAlg", "FeatureGen"] * 6
        )]
        platform.run(Trace.from_arrivals(arrivals))
        return platform

    def test_candidate_sets_match_scan(self):
        platform = self._run()
        controller = platform.controller
        for function, sandboxes in controller._by_function.items():
            expected = {s.sandbox_id for s in sandboxes.values() if s.idle_warm}
            assert set(controller._index.idle_warm.get(function, {})) == expected

    def test_node_order_matches_sorted_scan(self):
        platform = self._run()
        controller = platform.controller
        expected = sorted(
            platform.nodes, key=lambda n: (n.recomputed_used_bytes(), n.node_id)
        )
        assert controller._usage.snapshot() == expected

    def test_census_matches_scan(self):
        platform = self._run()
        controller = platform.controller
        index = controller._index
        scan_total = sum(len(s) for s in controller._by_function.values())
        assert index.total == scan_total
        live, dedup = controller.live_counts()
        assert all(v >= 0 for v in live.values())
        assert all(v >= 0 for v in dedup.values())
