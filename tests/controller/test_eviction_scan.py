"""Tripwire tests for the bounded eviction-candidate scan.

A permanently full node used to re-rank its entire idle population on
every cold-start placement (quadratic thrash at cluster scale).  These
tests pin the fix: ``eviction_scan_cap`` bounds the candidates ranked
per decision, the capped ranking is an exact prefix of the unlimited
order (so eviction outcomes are identical), and the scan volume is
observable through ``metrics.eviction_candidates_scanned``.
"""

from __future__ import annotations

from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.node import EvictionOrder, rank_victims
from repro.workload.functionbench import FunctionBenchSuite
from repro.workload.trace import Trace

CAP = 2


def _run(trace, suite, cap: int):
    cluster = ClusterConfig(
        nodes=1,
        node_memory_mb=160.0,
        content_scale=1.0 / 256.0,
        seed=7,
        eviction_scan_cap=cap,
    )
    # Long idle period: idle sandboxes stay WARM (never dedup away), so
    # the large arrivals must evict rather than find freed memory.
    policy = MedesPolicyConfig(
        idle_period_ms=300_000.0,
        keep_alive_ms=600_000.0,
        keep_dedup_ms=600_000.0,
        alpha=25.0,
    )
    platform = build_platform(PlatformKind.MEDES, cluster, suite, medes=policy)
    report = platform.run(trace)
    return platform, report


def _pressure_trace() -> Trace:
    # Concurrent small requests fill the node with idle sandboxes, then
    # alternating large functions (too big to coexist) force an eviction
    # decision over a big candidate population on every arrival.
    arrivals = [(float(i), "Vanilla") for i in range(7)]
    arrivals += [
        (20_000.0, "RNNModel"),
        (35_000.0, "ModelTrain"),
        (50_000.0, "RNNModel"),
    ]
    return Trace.from_arrivals(arrivals)


class TestEvictionScanCap:
    def test_capped_scan_is_bounded_and_outcome_identical(self):
        suite = FunctionBenchSuite.subset(["Vanilla", "RNNModel", "ModelTrain"])
        trace = _pressure_trace()
        _, unbounded = _run(trace, suite, cap=0)
        _, capped = _run(trace, suite, cap=CAP)

        # The workload genuinely exercises eviction under pressure.
        assert unbounded.metrics.evictions > 0
        assert unbounded.metrics.eviction_candidates_scanned > 0

        # Tripwire: the cap strictly reduces how many candidates are
        # ranked (the full population exceeds the cap at some decision).
        assert (
            capped.metrics.eviction_candidates_scanned
            < unbounded.metrics.eviction_candidates_scanned
        )

        # The capped ranking is a prefix of the unlimited order, so the
        # run's observable behaviour is unchanged.
        assert capped.metrics.evictions == unbounded.metrics.evictions
        assert {
            rid: record.start_type for rid, record in capped.metrics.requests.items()
        } == {
            rid: record.start_type
            for rid, record in unbounded.metrics.requests.items()
        }
        assert all(
            record.completion_ms is not None
            for record in capped.metrics.requests.values()
        )

    def test_scan_volume_observable_without_cap(self):
        suite = FunctionBenchSuite.subset(["Vanilla", "RNNModel", "ModelTrain"])
        _, report = _run(_pressure_trace(), suite, cap=0)
        # Unbounded runs still count ranked candidates, so regressions
        # toward quadratic scans show up in metrics, not just wall time.
        assert report.metrics.eviction_candidates_scanned >= report.metrics.evictions


class TestRankVictims:
    def test_capped_ranking_is_exact_prefix(self):
        suite = FunctionBenchSuite.subset(["Vanilla", "RNNModel", "ModelTrain"])
        platform, _ = _run(_pressure_trace(), suite, cap=0)
        node = platform.nodes[0]
        for order in EvictionOrder:
            full = node.eviction_candidates(order)
            for limit in (1, 2, len(full), len(full) + 3):
                assert node.eviction_candidates(order, limit=limit) == full[:limit]

    def test_rank_victims_empty(self):
        assert rank_victims([], EvictionOrder.LRU, limit=3) == []
