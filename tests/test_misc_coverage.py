"""Edge-coverage tests across modules (small behaviours not covered
by the per-module suites)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.controller.baselines import HISTOGRAM_MAX_MS, AdaptiveKeepAlivePolicy
from repro.memory.patch import Patch, compute_patch
from repro.platform.metrics import RunMetrics, StartType
from repro.sim.engine import Simulator


class TestSimulatorTimers:
    def test_timer_time_property(self):
        sim = Simulator(start_time=10.0)
        timer = sim.after(5.0, lambda: None)
        assert timer.time == 15.0

    def test_pending_events_counter(self):
        sim = Simulator()
        sim.after(1.0, lambda: None)
        sim.after(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_schedule_exactly_now_allowed(self):
        sim = Simulator(start_time=5.0)
        fired = []
        sim.at(5.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]


class TestPatchEdges:
    def test_deserialize_unknown_tag(self):
        base = rng_for("misc-patch").integers(0, 256, 256, dtype=np.uint8).tobytes()
        patch = compute_patch(base, base)
        blob = bytearray(patch.serialize())
        blob[16] = 0x7F  # corrupt the first op tag
        with pytest.raises(ValueError, match="tag"):
            Patch.deserialize(bytes(blob))

    def test_truncated_blob_rejected(self):
        with pytest.raises(Exception):
            Patch.deserialize(b"MP")


class TestAdaptiveHistogramEdges:
    def test_interarrivals_capped_at_histogram_max(self):
        policy = AdaptiveKeepAlivePolicy()
        policy.on_arrival("f", 0.0)
        policy.on_arrival("f", 10 * HISTOGRAM_MAX_MS)  # absurd gap
        entry = policy._history["f"]
        assert max(entry.intervals) <= HISTOGRAM_MAX_MS

    def test_sub_bin_gaps_kept_exact(self):
        policy = AdaptiveKeepAlivePolicy()
        policy.on_arrival("f", 0.0)
        policy.on_arrival("f", 1_500.0)  # below one histogram bin
        assert policy._history["f"].intervals == [1_500.0]


class TestMetricsEdges:
    def test_startup_percentile(self):
        metrics = RunMetrics(platform_name="t")
        for i, startup in enumerate([10.0, 20.0, 30.0]):
            record = metrics.on_arrival(i, "f", 0.0)
            record.start_type = StartType.WARM
            record.startup_ms = startup
            record.completion_ms = 100.0
        assert metrics.startup_percentile(50) == 20.0
        assert metrics.startup_percentile(50, "missing") != metrics.startup_percentile(50) or True

    def test_dedup_share_zero_without_sandboxes(self):
        assert RunMetrics(platform_name="t").dedup_share() == 0.0


class TestSavingsTimelineEdges:
    def test_longer_keep_alive_uses_more_memory(self):
        from repro.analysis.study import measure_function_savings, savings_timeline
        from repro.workload.functionbench import FunctionBenchSuite
        from repro.workload.trace import Trace

        suite = FunctionBenchSuite.subset(["Vanilla"])
        savings = measure_function_savings(suite, content_scale=1 / 256)
        arrivals = [(i * 30_000.0, "Vanilla") for i in range(10)]
        trace = Trace.from_arrivals(arrivals)
        short = savings_timeline(trace, suite, keep_alive_ms=60_000.0, savings=savings)
        long = savings_timeline(trace, suite, keep_alive_ms=600_000.0, savings=savings)
        assert sum(p.keep_alive_mb for p in long) >= sum(p.keep_alive_mb for p in short)


class TestProfileExecModel:
    def test_exec_cv_positive(self, suite):
        for profile in suite:
            assert profile.exec_cv > 0
