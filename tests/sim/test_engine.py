"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(5.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.at(3.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_after_relative(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.after(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.after(1.0, lambda: order.append("inner"))

        sim.at(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_arbitrary_schedules_run_sorted(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(times)


class TestTimers:
    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        timer = sim.after(5.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert not fired
        assert timer.cancelled

    def test_pending_reflects_state(self):
        sim = Simulator()
        timer = sim.after(5.0, lambda: None)
        assert timer.pending
        sim.run()
        assert not timer.pending

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.after(1.0, lambda: fired.append(1))
        sim.run()
        timer.cancel()
        assert fired == [1]


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_cancel_stops_series(self):
        sim = Simulator()
        ticks = []
        timer = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(25.0)
        timer.cancel()
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_every_rejects_bad_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_every_cancel_from_inside_callback_stops_series(self):
        """Regression: cancelling the series from its own callback used
        to be ignored — tick() re-armed onto a fresh entry after the
        callback returned, so the cancelled flag was lost and the series
        ran forever."""
        sim = Simulator()
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                holder["timer"].cancel()

        holder["timer"] = sim.every(10.0, tick)
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]
        assert sim.pending_events == 0


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.at(5.0, lambda: fired.append("early"))
        sim.at(15.0, lambda: fired.append("late"))
        sim.run_until(10.0)
        assert fired == ["early"]
        assert sim.now == 10.0
        sim.run_until(20.0)
        assert fired == ["early", "late"]

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, lambda: fired.append(1))
        sim.run_until(10.0)
        assert fired == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_event_budget_guard(self):
        sim = Simulator()

        def rearm():
            sim.after(1.0, rearm)

        sim.after(1.0, rearm)
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=100)
