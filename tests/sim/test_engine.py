"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import _COMPACT_MIN_CANCELLED, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(5.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.at(3.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]
        assert sim.now == 7.5

    def test_after_relative(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.after(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [105.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.after(1.0, lambda: order.append("inner"))

        sim.at(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_arbitrary_schedules_run_sorted(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(times)


class TestTimers:
    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        timer = sim.after(5.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert not fired
        assert timer.cancelled

    def test_pending_reflects_state(self):
        sim = Simulator()
        timer = sim.after(5.0, lambda: None)
        assert timer.pending
        sim.run()
        assert not timer.pending

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.after(1.0, lambda: fired.append(1))
        sim.run()
        timer.cancel()
        assert fired == [1]


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_cancel_stops_series(self):
        sim = Simulator()
        ticks = []
        timer = sim.every(10.0, lambda: ticks.append(sim.now))
        sim.run_until(25.0)
        timer.cancel()
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]

    def test_every_rejects_bad_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_every_cancel_from_inside_callback_stops_series(self):
        """Regression: cancelling the series from its own callback used
        to be ignored — tick() re-armed onto a fresh entry after the
        callback returned, so the cancelled flag was lost and the series
        ran forever."""
        sim = Simulator()
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                holder["timer"].cancel()

        holder["timer"] = sim.every(10.0, tick)
        sim.run_until(100.0)
        assert ticks == [10.0, 20.0]
        assert sim.pending_events == 0


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.at(5.0, lambda: fired.append("early"))
        sim.at(15.0, lambda: fired.append("late"))
        sim.run_until(10.0)
        assert fired == ["early"]
        assert sim.now == 10.0
        sim.run_until(20.0)
        assert fired == ["early", "late"]

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.at(10.0, lambda: fired.append(1))
        sim.run_until(10.0)
        assert fired == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_event_budget_guard(self):
        sim = Simulator()

        def rearm():
            sim.after(1.0, rearm)

        sim.after(1.0, rearm)
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=100)

    def test_budget_ignores_cancelled_entries(self):
        """Regression: ``run(max_events=N)`` used to raise "event budget
        exhausted" when the heap held nothing but lazily-cancelled
        entries — the guard only checked heap emptiness, counting
        garbage as pending work."""
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.at(float(i), lambda i=i: fired.append(i))
        timers = [sim.at(100.0 + i, lambda: fired.append("cancelled")) for i in range(20)]
        for timer in timers:
            timer.cancel()
        sim.run(max_events=5)  # must complete, not raise
        assert fired == [0, 1, 2, 3, 4]
        assert sim.pending_events == 0
        assert sim.cancelled_events == 0

    def test_budget_still_raises_with_live_events(self):
        sim = Simulator()
        for i in range(10):
            sim.at(float(i), lambda: None)
        cancelled = sim.at(50.0, lambda: None)
        cancelled.cancel()
        with pytest.raises(SimulationError, match=r"6 live events.*1 cancelled"):
            sim.run(max_events=4)


class TestCancelledBookkeeping:
    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        live = sim.at(1.0, lambda: None)
        dead = sim.at(2.0, lambda: None)
        dead.cancel()
        assert sim.pending_events == 1
        assert sim.cancelled_events == 1
        sim.run()
        assert sim.pending_events == 0
        assert sim.cancelled_events == 0
        assert not live.pending

    def test_compaction_drops_cancelled_entries(self):
        """Once cancelled entries dominate a large heap, the heap is
        rebuilt without them instead of waiting for lazy pops."""
        sim = Simulator()
        doomed = [sim.at(10.0 + i, lambda: None) for i in range(_COMPACT_MIN_CANCELLED)]
        keep = [sim.at(5.0 + i, lambda: None) for i in range(10)]
        for timer in doomed:
            timer.cancel()
        # Compaction triggered by the last cancel: heap shrank in place.
        assert len(sim._heap) == len(keep)
        assert sim.cancelled_events == 0
        assert sim.pending_events == len(keep)
        # The surviving entries still dispatch in order.
        for _ in range(len(keep)):
            assert sim.step()
        assert sim.events_processed == len(keep)
        assert not sim.step()

    def test_small_heaps_not_compacted(self):
        sim = Simulator()
        timers = [sim.at(1.0 + i, lambda: None) for i in range(10)]
        for timer in timers:
            timer.cancel()
        # Below _COMPACT_MIN_CANCELLED: entries stay until popped.
        assert len(sim._heap) == 10
        assert sim.pending_events == 0
        sim.run()
        assert len(sim._heap) == 0


class TestScheduleStream:
    def test_stream_matches_eager_order(self):
        times = [1.0, 2.0, 2.0, 3.0, 7.5, 7.5, 7.5, 9.0]
        eager_sim = Simulator()
        eager_seen = []
        for i, t in enumerate(times):
            eager_sim.at(t, lambda i=i: eager_seen.append((eager_sim.now, i)))
        eager_sim.run()

        stream_sim = Simulator()
        stream_seen = []
        stream_sim.schedule_stream(
            times,
            lambda i: lambda: stream_seen.append((stream_sim.now, i)),
            chunk_size=3,
        )
        stream_sim.run()
        assert stream_seen == eager_seen

    def test_stream_keeps_window_resident(self):
        times = [float(i) for i in range(100)]
        sim = Simulator()
        sim.schedule_stream(times, lambda i: lambda: None, chunk_size=8)
        assert sim.pending_events == 8
        sim.run()
        assert sim.events_processed == 100

    def test_stream_reserves_sequence_numbers(self):
        """Events scheduled *after* the stream tie-break behind in-stream
        same-time events, exactly as if the stream had been eager."""
        sim = Simulator()
        order = []
        sim.schedule_stream(
            [1.0, 5.0, 5.0], lambda i: lambda: order.append(f"s{i}"), chunk_size=1
        )
        sim.at(5.0, lambda: order.append("late"))
        sim.run()
        assert order == ["s0", "s1", "s2", "late"]

    def test_stream_rejects_unsorted(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="unsorted"):
            sim.schedule_stream([5.0, 1.0], lambda i: lambda: None, chunk_size=10)
            sim.run()

    def test_stream_empty_and_bad_chunk(self):
        sim = Simulator()
        assert sim.schedule_stream([], lambda i: lambda: None) == 0
        with pytest.raises(SimulationError):
            sim.schedule_stream([1.0], lambda i: lambda: None, chunk_size=0)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=7),
    )
    def test_stream_bit_identical_to_eager(self, times, chunk):
        times = sorted(times)
        eager_sim = Simulator()
        eager_seen = []
        for i, t in enumerate(times):
            eager_sim.at(t, lambda i=i: eager_seen.append((eager_sim.now, i)))
        eager_sim.run()

        stream_sim = Simulator()
        stream_seen = []
        stream_sim.schedule_stream(
            times,
            lambda i: lambda: stream_seen.append((stream_sim.now, i)),
            chunk_size=chunk,
        )
        stream_sim.run()
        assert stream_seen == eager_seen
        assert stream_sim.events_processed == eager_sim.events_processed
