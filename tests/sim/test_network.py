"""Tests for the RDMA fabric cost model."""

from __future__ import annotations

import pytest

from repro.sim.network import RdmaConfig, RdmaFabric


class TestConfig:
    def test_defaults_positive(self):
        config = RdmaConfig()
        assert config.bandwidth_gbps == 10.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RdmaConfig(read_latency_us=0)
        with pytest.raises(ValueError):
            RdmaConfig(bandwidth_gbps=-1)

    def test_rejects_non_positive_local_copy(self):
        # A negative local-copy cost silently produced negative restore
        # latencies before the check covered it.
        with pytest.raises(ValueError):
            RdmaConfig(local_copy_us_per_kb=-0.05)
        with pytest.raises(ValueError):
            RdmaConfig(local_copy_us_per_kb=0)

    def test_negative_local_copy_never_yields_negative_latency(self):
        fabric = RdmaFabric()
        assert fabric.read_ms(4096, local=True) > 0.0


class TestSingleRead:
    def test_remote_read_latency_floor(self):
        fabric = RdmaFabric()
        # Even a zero-byte read pays the op latency.
        assert fabric.read_ms(0, local=False) == pytest.approx(0.005)

    def test_remote_read_includes_serialization(self):
        fabric = RdmaFabric(RdmaConfig(read_latency_us=0.001, bandwidth_gbps=10.0))
        # 10 Gbps = 1.25 GB/s; 1.25 MB takes ~1 ms.
        ms = fabric.read_ms(1_250_000, local=False)
        assert ms == pytest.approx(1.0, rel=0.01)

    def test_local_read_cheaper_than_remote(self):
        fabric = RdmaFabric()
        assert fabric.read_ms(4096, local=True) < fabric.read_ms(4096, local=False)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RdmaFabric().read_ms(-1, local=False)

    def test_stats_accumulate(self):
        fabric = RdmaFabric()
        fabric.read_ms(100, local=False)
        fabric.read_ms(200, local=True)
        assert fabric.stats.remote_reads == 1
        assert fabric.stats.remote_bytes == 100
        assert fabric.stats.local_reads == 1
        assert fabric.stats.local_bytes == 200


class TestBatchRead:
    def test_empty_plan_is_free(self):
        assert RdmaFabric().batch_read_ms({}, local_peer=0) == 0.0

    def test_zero_ops_skipped(self):
        assert RdmaFabric().batch_read_ms({1: (0, 0)}, local_peer=0) == 0.0

    def test_peers_proceed_in_parallel(self):
        fabric = RdmaFabric()
        single = fabric.batch_read_ms({1: (10, 40960)}, local_peer=0)
        double = fabric.batch_read_ms({1: (10, 40960), 2: (10, 40960)}, local_peer=0)
        assert double == pytest.approx(single)

    def test_pipelining_cheaper_than_sequential(self):
        fabric = RdmaFabric()
        batched = fabric.batch_read_ms({1: (100, 409600)}, local_peer=0)
        sequential = sum(fabric.read_ms(4096, local=False) for _ in range(100))
        assert batched < sequential

    def test_local_peer_bypasses_fabric(self):
        fabric = RdmaFabric()
        local = fabric.batch_read_ms({0: (100, 409600)}, local_peer=0)
        remote = fabric.batch_read_ms({1: (100, 409600)}, local_peer=0)
        assert local < remote
        assert fabric.stats.local_reads == 100
        assert fabric.stats.remote_reads == 100

    def test_slowest_peer_dominates(self):
        fabric = RdmaFabric()
        small = fabric.batch_read_ms({1: (1, 4096)}, local_peer=0)
        mixed = fabric.batch_read_ms({1: (1, 4096), 2: (1000, 4096000)}, local_peer=0)
        big = fabric.batch_read_ms({2: (1000, 4096000)}, local_peer=0)
        assert mixed == pytest.approx(big)
        assert mixed > small

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RdmaFabric().batch_read_ms({1: (-1, 0)}, local_peer=0)


class TestRequirePeer:
    def test_available_peer_passes(self):
        RdmaFabric().require_peer(1)

    def test_failed_peer_raises_and_counts(self):
        from repro.sim.network import PeerUnavailable

        fabric = RdmaFabric()
        fabric.fail_peer(1)
        with pytest.raises(PeerUnavailable):
            fabric.require_peer(1)
        assert fabric.stats.failed_reads == 1
