"""Tests for repro._util helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    fmt_bytes,
    fmt_ms,
    hash_bytes,
    percentile,
    rng_for,
    round_up,
    stable_seed,
)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_distinct_parts_distinct_seeds(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a") != stable_seed("b")

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_no_concatenation_ambiguity(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_64_bit_range(self):
        seed = stable_seed("anything")
        assert 0 <= seed < 2**64


class TestRngFor:
    def test_same_parts_same_stream(self):
        a = rng_for("x", 3).integers(0, 1000, 10)
        b = rng_for("x", 3).integers(0, 1000, 10)
        assert list(a) == list(b)

    def test_different_parts_different_stream(self):
        a = rng_for("x", 3).integers(0, 1000, 10)
        b = rng_for("x", 4).integers(0, 1000, 10)
        assert list(a) != list(b)


class TestHashBytes:
    def test_deterministic(self):
        assert hash_bytes(b"hello") == hash_bytes(b"hello")

    def test_truncation_bits(self):
        for bits in (8, 16, 40, 64):
            assert hash_bytes(b"data", bits) < 2**bits

    def test_truncation_is_prefix_consistent(self):
        full = hash_bytes(b"data", 64)
        assert hash_bytes(b"data", 16) == full & 0xFFFF

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            hash_bytes(b"x", 0)
        with pytest.raises(ValueError):
            hash_bytes(b"x", 161)

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_inputs_rarely_collide_at_64_bits(self, a, b):
        if a != b:
            # Not a collision proof, just a sanity property on samples.
            assert hash_bytes(a) != hash_bytes(b) or len(a) + len(b) > 0


class TestRoundUp:
    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_result_is_multiple_and_minimal(self, value, multiple):
        result = round_up(value, multiple)
        assert result % multiple == 0
        assert result >= value
        assert result - value < multiple

    def test_rejects_non_positive_multiple(self):
        with pytest.raises(ValueError):
            round_up(5, 0)


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_within_min_max(self, values):
        p = percentile(values, 90)
        assert min(values) - 1e-9 <= p <= max(values) + 1e-9


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(2048) == "2.0KB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_fmt_ms(self):
        assert fmt_ms(0.5) == "500us"
        assert fmt_ms(12.34) == "12.3ms"
        assert fmt_ms(2500) == "2.50s"
