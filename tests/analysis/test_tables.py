"""Tests for the text renderers."""

from __future__ import annotations

import pytest

from repro.analysis.tables import (
    cdf_points,
    cdf_summary,
    histogram_ascii,
    render_cdf,
    render_matrix,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "count"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderMatrix:
    def test_square_matrix(self):
        labels = ["x", "y"]
        values = {(r, c): 0.5 for r in labels for c in labels}
        text = render_matrix(labels, values)
        assert "0.50" in text
        assert text.count("0.50") == 4


class TestCdfHelpers:
    def test_cdf_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions[-1] == 1.0

    def test_cdf_points_downsamples(self):
        points = cdf_points(range(10_000), points=100)
        assert len(points) == 100

    def test_cdf_points_empty(self):
        assert cdf_points([]) == []

    def test_cdf_summary(self):
        text = cdf_summary([1.0, 2.0, 3.0])
        assert "p50=2.00" in text
        assert cdf_summary([]) == "(empty)"

    def test_render_cdf_handles_empty(self):
        text = render_cdf([], title="empty")
        assert "n/a" in text

    def test_render_cdf_quantiles(self):
        text = render_cdf([1.0] * 100)
        assert "1.000" in text


class TestHistogram:
    def test_ascii_histogram(self):
        text = histogram_ascii([1, 1, 1, 5, 9], bins=2)
        assert "#" in text
        assert histogram_ascii([]) == "(empty)"
