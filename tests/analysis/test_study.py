"""Tests for the Section-2 study drivers and microbenchmarks."""

from __future__ import annotations

import pytest

from repro.analysis.study import (
    cross_function_matrix,
    measure_function_savings,
    per_function_microbench,
    same_function_redundancy,
    savings_timeline,
)
from repro.memory.image import shared_fraction_upper_bound
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite
from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def tri_suite():
    return FunctionBenchSuite.subset(["Vanilla", "LinAlg", "RNNModel"])


@pytest.fixture(scope="module")
def microbench(tri_suite):
    return per_function_microbench(tri_suite, content_scale=TEST_SCALE, seed=2)


class TestSameFunctionRedundancy:
    def test_structure(self, tri_suite):
        result = same_function_redundancy(
            tri_suite, chunk_sizes=(64, 1024), content_scale=TEST_SCALE
        )
        assert set(result) == set(tri_suite.names())
        for by_chunk in result.values():
            assert set(by_chunk) == {64, 1024}
            assert all(0.0 <= v <= 1.0 for v in by_chunk.values())

    def test_fig1a_shape(self, tri_suite):
        result = same_function_redundancy(
            tri_suite, chunk_sizes=(64, 1024), content_scale=TEST_SCALE
        )
        for function, by_chunk in result.items():
            assert by_chunk[64] > 0.75, function
            assert by_chunk[1024] < by_chunk[64], function


class TestCrossFunctionMatrix:
    def test_fig1c_shape(self, tri_suite):
        matrix = cross_function_matrix(tri_suite, content_scale=TEST_SCALE)
        names = tri_suite.names()
        for row in names:
            for col in names:
                assert 0.3 <= matrix[(row, col)] <= 1.0, (row, col)


class TestMicrobench:
    def test_savings_within_analytic_bound(self, microbench, tri_suite):
        for profile in tri_suite:
            bound = shared_fraction_upper_bound(profile.layout())
            measured = microbench[profile.name].savings_fraction
            assert 0.0 < measured <= bound + 0.02, profile.name

    def test_dedup_op_durations_in_paper_band(self, microbench):
        """Section 7.7: ~1-4 s per dedup op, growing with footprint."""
        for result in microbench.values():
            assert 500.0 < result.dedup_total_ms < 6_000.0

    def test_restores_much_faster_than_cold(self, microbench, tri_suite):
        for profile in tri_suite:
            restore = microbench[profile.name].restore_total_ms
            assert restore < 0.5 * profile.cold_start_ms

    def test_bigger_functions_longer_dedup_ops(self, microbench):
        assert (
            microbench["RNNModel"].dedup_total_ms > microbench["Vanilla"].dedup_total_ms
        )

    def test_page_partition(self, microbench):
        for result in microbench.values():
            assert result.unique_pages >= 0
            assert result.patched_pages > 0
            assert result.zero_pages > 0

    def test_savings_wrapper_consistent(self, tri_suite, microbench):
        savings = measure_function_savings(tri_suite, content_scale=TEST_SCALE, seed=2)
        for name, measurement in savings.items():
            assert measurement.savings_fraction == pytest.approx(
                microbench[name].savings_fraction
            )
            assert measurement.saved_mb == pytest.approx(
                measurement.savings_fraction * measurement.memory_mb
            )


class TestSavingsTimeline:
    def test_fig2_shape(self, tri_suite):
        trace = AzureTraceGenerator(seed=9).generate(10, tri_suite.names())
        savings = measure_function_savings(tri_suite, content_scale=TEST_SCALE, seed=2)
        points = savings_timeline(trace, tri_suite, savings=savings)
        assert len(points) > 5
        for point in points:
            assert 0.0 <= point.after_dedup_mb <= point.keep_alive_mb + 1e-9

    def test_savings_material(self, tri_suite):
        """The paper's Figure 2 shows up-to-30% achievable savings."""
        trace = AzureTraceGenerator(seed=9).generate(10, tri_suite.names())
        savings = measure_function_savings(tri_suite, content_scale=TEST_SCALE, seed=2)
        points = savings_timeline(trace, tri_suite, savings=savings)
        busy = [p for p in points if p.keep_alive_mb > 0]
        assert busy
        mean_ratio = sum(p.after_dedup_mb / p.keep_alive_mb for p in busy) / len(busy)
        assert mean_ratio < 0.9
