"""Rendering tests for every experiment result type.

The benchmark harness relies on ``render()`` never raising on any
plausible data shape; these tests cover the renderers with synthetic
result objects (no platform runs needed).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    Fig8Result,
    Fig12Result,
    Fig13Result,
    Fig16Result,
    OverheadResult,
    SweepResult,
)


class TestFig8Render:
    def test_rows_rendered(self):
        result = Fig8Result(
            rows=[("Vanilla", 550.0, 5.0, 15.0, 40.0, 1350.0)]
        )
        text = result.render()
        assert "Vanilla" in text
        assert "60.0" in text  # read + compute + fixed


class TestSweepRenders:
    def test_fig12(self):
        text = Fig12Result(cold_starts={"KA-5": 10, "Medes": 5}).render()
        assert "KA-5" in text and "Medes" in text

    def test_fig13(self):
        text = Fig13Result(cold_starts={"Emulated Catalyzer": 9}).render()
        assert "Catalyzer" in text

    def test_sweep_with_extras_and_metrics(self):
        result = SweepResult(
            title="t",
            parameter="p",
            cold_starts={"a": 1, "b": 2},
            extras={"a": "note"},
            metrics={"a": 0.5},
        )
        text = result.render()
        assert "note" in text
        assert "b" in text

    def test_fig16(self):
        result = Fig16Result(
            cold_starts={"5": 10},
            slowdowns={"5": [1.0, 2.0, 3.0]},
            restore_ms={"5": 80.0},
            savings_mb={"5": 27.0},
        )
        text = result.render()
        assert "80" in text
        assert "27.0" in text


class TestOverheadRender:
    def test_render(self):
        result = OverheadResult(
            dedup_duration_ms={"Vanilla": 1300.0},
            lookup_ms={"Vanilla": 300.0},
            registry_bytes=200_000,
            registry_digests=9_000,
            agent_metadata_share=0.06,
        )
        text = result.render()
        assert "Vanilla" in text
        assert "9000" in text
        assert "6.0%" in text
