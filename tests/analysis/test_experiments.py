"""Smoke tests for the experiment drivers (tiny durations).

Each driver must run end-to-end and render; the full-scale shapes are
validated in the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.platform.config import ClusterConfig

TINY = 3.0  # minutes

SMALL_CONFIG = ClusterConfig(
    nodes=2, node_memory_mb=512.0, content_scale=1.0 / 256.0, seed=1
)


class TestWorkloadBuilders:
    def test_full_workload(self):
        suite, trace = experiments.full_workload(duration_min=TINY)
        assert len(trace) > 0
        assert set(trace.functions()) <= set(suite.names())

    def test_representative_workload(self):
        suite, trace = experiments.representative_workload(duration_min=TINY)
        base_names = {name.split("~")[0] for name in suite.names()}
        assert base_names == {"LinAlg", "FeatureGen", "ModelTrain"}


class TestDrivers:
    def test_fig7(self):
        result = experiments.run_fig7(duration_min=TINY, config=SMALL_CONFIG)
        text = result.render()
        assert "Fig 7a" in text
        assert "cold starts per function" in text

    def test_fig8(self):
        result = experiments.run_fig8(content_scale=1.0 / 256.0)
        text = result.render()
        assert "Fig 8" in text
        for fn, cold, read, compute, fixed, dedup_total in result.rows:
            assert read + compute + fixed < cold  # dedup start beats cold

    def test_fig9(self):
        result = experiments.run_fig9(duration_min=TINY, config=SMALL_CONFIG)
        text = result.render()
        assert "Fig 9a" in text
        assert 0.0 <= result.cross_function_share <= 1.0
        assert result.same_function_share + result.cross_function_share == pytest.approx(
            1.0
        )

    def test_pressure(self):
        result = experiments.run_pressure(
            duration_min=TINY, pool_mb=(1024.0, 512.0), nodes=2
        )
        assert len(result.comparisons) == 2
        assert "Fig 10a" in result.render()

    def test_fig12(self):
        result = experiments.run_fig12(
            duration_min=TINY, keep_alive_minutes=(5, 10), config=SMALL_CONFIG
        )
        assert set(result.cold_starts) == {"KA-5", "KA-10", "Medes"}

    def test_fig13(self):
        result = experiments.run_fig13(duration_min=TINY, config=SMALL_CONFIG)
        assert set(result.cold_starts) == {
            "Emulated Catalyzer",
            "Emulated Catalyzer + Medes",
        }

    def test_fig14(self):
        result = experiments.run_fig14(
            duration_min=TINY, chunk_sizes=(64,), config=SMALL_CONFIG
        )
        assert "64B" in result.cold_starts

    def test_fig15(self):
        result = experiments.run_fig15(
            duration_min=TINY, keep_dedup_minutes=(5,), config=SMALL_CONFIG
        )
        assert "No Dedup" in result.cold_starts

    def test_fig16(self):
        result = experiments.run_fig16(
            duration_min=TINY, cardinalities=(5,), config=SMALL_CONFIG
        )
        assert "5" in result.cold_starts
        assert "Fig 16" in result.render()

    def test_overheads(self):
        result = experiments.run_overheads(duration_min=TINY, config=SMALL_CONFIG)
        text = result.render()
        assert "registry" in text
        assert result.registry_digests >= 0
        assert 0.0 <= result.agent_metadata_share <= 1.0
