"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_parses(self):
        args = build_parser().parse_args(["experiment", "fig8", "--duration", "5"])
        assert args.name == "fig8"
        assert args.duration == 5.0

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.duration == 10.0
        assert args.nodes == 2


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "sec77" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_generates_csv(self, capsys, tmp_path):
        out = tmp_path / "t.csv"
        code = main(
            ["trace", str(out), "--duration", "2", "--functions", "Vanilla,LinAlg"]
        )
        assert code == 0
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header == "arrival_ms,function"

    def test_trace_rejects_unknown_function(self, tmp_path):
        with pytest.raises(KeyError):
            main(["trace", str(tmp_path / "t.csv"), "--functions", "Nope"])

    def test_quickstart_runs(self, capsys):
        code = main(
            [
                "quickstart",
                "--duration",
                "2",
                "--seed",
                "1",
                "--nodes",
                "1",
                "--node-memory-mb",
                "512",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "medes" in out
        assert "fixed-ka-10min" in out
