"""Template fork + delta must reconstruct images byte-exactly.

The property the whole subsystem rests on (DESIGN.md §14): factoring an
image into shared-segment patches plus private pages, then forking it
back from the catalog's template content, is the identity — across every
profile, ASLR on and off, fresh and executed (mutated) states, and
content scales.  The agent-level test pins the stronger cross-path
claim: a template fork restores the *same bytes* as the dedup
base-fetch+patch restore of an identical sandbox.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.memory.synth import template_region_content
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.storage.tiers import StorageConfig
from repro.templates.catalog import TemplateCatalog, TemplateConfig
from repro.templates.delta import build_delta_table, reconstruct_image
from repro.workload.functionbench import FunctionBenchSuite
from tests.conftest import TEST_SCALE

SUITE = FunctionBenchSuite.default()


def segment_content_for(image):
    """Template bytes for every shareable region, as the catalog builds
    them (instance-independent: no ASLR, seed-0 pointers)."""
    return {
        ("", region.spec.content_key, region.size): template_region_content(
            region.spec, region.size
        )
        for region in image.regions
        if TemplateCatalog.eligible(region)
    }


class TestDeltaRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(SUITE.names()),
        seed=st.integers(min_value=0, max_value=2**32),
        aslr=st.booleans(),
        executed=st.booleans(),
    )
    def test_fork_reconstructs_byte_identical(self, name, seed, aslr, executed):
        profile = SUITE.get(name)
        image = profile.synthesize(
            seed, content_scale=TEST_SCALE, aslr=aslr, executed=executed
        )
        segments = segment_content_for(image)
        assert segments, "every profile has shareable runtime/library regions"
        table = build_delta_table(
            image,
            segments,
            content_scale=TEST_SCALE,
            full_size_bytes=profile.memory_bytes,
        )
        forked = reconstruct_image(table, segments, verify=True)
        assert forked.checksum() == image.checksum()
        assert np.array_equal(forked.data, image.data)
        # Metadata survives too: a forked sandbox is indistinguishable.
        assert forked.regions == image.regions
        assert forked.aslr == image.aslr
        assert forked.executed == image.executed

    @settings(max_examples=15, deadline=None)
    @given(
        name=st.sampled_from(SUITE.names()),
        seed=st.integers(min_value=0, max_value=2**16),
        scale_denom=st.sampled_from([64, 256]),
    )
    def test_round_trip_across_content_scales(self, name, seed, scale_denom):
        profile = SUITE.get(name)
        scale = 1.0 / scale_denom
        image = profile.synthesize(seed, content_scale=scale, executed=True)
        segments = segment_content_for(image)
        table = build_delta_table(
            image, segments, content_scale=scale, full_size_bytes=profile.memory_bytes
        )
        forked = reconstruct_image(table, segments, verify=True)
        assert np.array_equal(forked.data, image.data)

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(SUITE.names()),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_delta_retains_less_than_the_image(self, name, seed):
        """Parking as a delta must actually shed the shared regions."""
        profile = SUITE.get(name)
        image = profile.synthesize(seed, content_scale=TEST_SCALE, executed=True)
        segments = segment_content_for(image)
        table = build_delta_table(
            image,
            segments,
            content_scale=TEST_SCALE,
            full_size_bytes=profile.memory_bytes,
        )
        assert table.retained_content_bytes < image.nbytes
        assert 0.0 < table.savings_fraction < 1.0
        # Page partition is exact: shared spans + uniques + zeros.
        covered = table.patched_pages + len(table.unique_pages) + len(table.zero_pages)
        assert covered == image.num_pages

    def test_partial_segment_content_still_round_trips(self, linalg_profile):
        """Regions without a published segment fall back to private
        pages — the table is bigger but the fork stays byte-exact."""
        image = linalg_profile.synthesize(3, content_scale=TEST_SCALE, executed=True)
        segments = segment_content_for(image)
        assert len(segments) >= 2
        partial = dict(list(segments.items())[:1])
        table = build_delta_table(
            image,
            partial,
            content_scale=TEST_SCALE,
            full_size_bytes=linalg_profile.memory_bytes,
        )
        full_table = build_delta_table(
            image,
            segments,
            content_scale=TEST_SCALE,
            full_size_bytes=linalg_profile.memory_bytes,
        )
        forked = reconstruct_image(table, partial, verify=True)
        assert np.array_equal(forked.data, image.data)
        assert table.retained_content_bytes > full_table.retained_content_bytes


@pytest.fixture
def template_agent(linalg_profile):
    """A node-0 agent with a catalog AND a LinAlg base checkpoint on
    node 1, so both park/restore paths are available on the same state
    (the remote base makes the dedup restore pay its base-read cost)."""
    store = CheckpointStore()
    registry = FingerprintRegistry()
    catalog = TemplateCatalog(
        TemplateConfig(pool_mb=512.0), StorageConfig(), content_scale=TEST_SCALE
    )
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=TEST_SCALE,
        templates=catalog,
    )
    base_image = linalg_profile.synthesize(100, content_scale=TEST_SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function="LinAlg",
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=linalg_profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    return agent, catalog


def make_sandbox(profile, seed=200) -> Sandbox:
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
    sandbox.image = profile.synthesize(seed, content_scale=TEST_SCALE, executed=True)
    return sandbox


class TestForkMatchesDedupRestore:
    def test_both_paths_restore_identical_bytes(self, template_agent, linalg_profile):
        """Fork+delta == base-fetch+patch, byte for byte."""
        agent, _catalog = template_agent
        sandbox = make_sandbox(linalg_profile, seed=7)
        original = sandbox.image.checksum()

        dedup_outcome = agent.dedup(sandbox)
        restored = agent.restore(dedup_outcome.table, verify=True)

        templatize = agent.templatize(sandbox)
        fork = agent.fork_restore(templatize.table, now=0.0, verify=True)

        assert restored.image.checksum() == original
        assert fork.image.checksum() == original
        assert np.array_equal(fork.image.data, restored.image.data)

    def test_fork_is_cheaper_than_dedup_restore(self, template_agent, linalg_profile):
        """The point of the subsystem: once replicas are warm, a fork
        moves no base bytes and beats the dedup restore."""
        agent, _catalog = template_agent
        sandbox = make_sandbox(linalg_profile, seed=9)
        dedup_outcome = agent.dedup(sandbox)
        restore = agent.restore(dedup_outcome.table)
        templatize = agent.templatize(sandbox)
        first_fork = agent.fork_restore(templatize.table, now=0.0)
        warm_fork = agent.fork_restore(templatize.table, now=1.0)
        assert first_fork.promoted_bytes > 0
        assert warm_fork.promoted_bytes == 0
        assert warm_fork.timings.promote_ms == 0.0
        assert warm_fork.timings.total_ms < restore.timings.total_ms

    def test_second_function_shares_segments(self, template_agent, suite):
        """Cross-function sharing: a second function importing the same
        runtime publishes nothing new for it."""
        agent, _catalog = template_agent
        first = agent.templatize(make_sandbox(suite.get("LinAlg"), seed=11))
        second = agent.templatize(make_sandbox(suite.get("Vanilla"), seed=12))
        assert second.segments_shared >= 1  # at minimum the runtime
        shared_keys = set(first.table.segment_keys) & set(second.table.segment_keys)
        assert shared_keys
