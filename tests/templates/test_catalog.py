"""TemplateCatalog unit tests: segment dedup, refcounts, pool reclaim,
residency and the hot-window eviction guard."""

from __future__ import annotations

import pytest

from repro.storage.tiers import StorageConfig
from repro.templates.catalog import (
    TemplateCatalog,
    TemplateConfig,
    TemplateInUse,
    TemplatePoolFull,
)
from tests.conftest import TEST_SCALE


def make_catalog(pool_mb=512.0, hot_window_ms=120_000.0) -> TemplateCatalog:
    return TemplateCatalog(
        TemplateConfig(pool_mb=pool_mb, hot_window_ms=hot_window_ms),
        StorageConfig(),
        content_scale=TEST_SCALE,
    )


@pytest.fixture
def regions(linalg_image_executed):
    return linalg_image_executed.regions


class TestSegmentDedup:
    def test_publish_once_then_hit(self, regions):
        catalog = make_catalog()
        segments, created, publish_ms = catalog.ensure_segments(regions)
        assert created and publish_ms > 0
        assert len(segments) == len(catalog.shareable_regions(regions))
        again, created_again, again_ms = catalog.ensure_segments(regions)
        assert not created_again and again_ms == 0.0
        assert [s.segment_id for s in again] == [s.segment_id for s in segments]
        assert catalog.segment_hits == len(segments)
        assert catalog.segments_created == len(segments)

    def test_pool_charged_at_full_scale(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        expected = sum(int(s.size / TEST_SCALE) for s in segments)
        assert catalog.pool.used_bytes == expected
        assert all(s.full_bytes == int(s.size / TEST_SCALE) for s in segments)

    def test_zero_fill_regions_excluded(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = {s.content_key for s in segments}
        for region in regions:
            if region.spec.zero_fill:
                assert region.spec.content_key not in keys


class TestPoolPressure:
    def test_pool_full_is_all_or_nothing(self, regions):
        catalog = make_catalog(pool_mb=1.0)  # far too small for the set
        with pytest.raises(TemplatePoolFull):
            catalog.ensure_segments(regions)
        assert len(catalog) == 0
        assert catalog.pool.used_bytes == 0

    def test_reclaim_retires_idle_segments(self, suite):
        # LinAlg publishes runtime (8 MB) + numpy (6 MB); RNNModel then
        # hits the runtime and needs torch (42 MB).  A 52 MB pool forces
        # the idle numpy segment out — but never the runtime segment the
        # in-flight publish itself is reusing.
        linalg = suite.get("LinAlg").synthesize(1, content_scale=TEST_SCALE)
        rnn = suite.get("RNNModel").synthesize(1, content_scale=TEST_SCALE)
        catalog = make_catalog(pool_mb=52.0)
        first, _, _ = catalog.ensure_segments(linalg.regions)
        runtime_keys = {s.key for s in first if "runtime" in s.content_key}
        library_keys = {s.key for s in first} - runtime_keys
        assert runtime_keys and library_keys
        rnn_segments, _, _ = catalog.ensure_segments(rnn.regions)
        assert catalog.pool.used_bytes <= catalog.pool.account.capacity_bytes
        assert all(key in catalog._segments for key in runtime_keys)
        assert all(key not in catalog._segments for key in library_keys)
        # Every segment handed back is still in the catalog (acquirable).
        catalog.acquire(tuple(s.key for s in rnn_segments))

    def test_referenced_segments_never_reclaimed(self, suite):
        linalg = suite.get("LinAlg").synthesize(1, content_scale=TEST_SCALE)
        rnn = suite.get("RNNModel").synthesize(1, content_scale=TEST_SCALE)
        catalog = make_catalog(pool_mb=52.0)
        segments, _, _ = catalog.ensure_segments(linalg.regions)
        keys = tuple(s.key for s in segments)
        catalog.acquire(keys)
        with pytest.raises(TemplatePoolFull):
            catalog.ensure_segments(rnn.regions)
        assert all(key in catalog._segments for key in keys)
        catalog.release(keys)


class TestRefcounts:
    def test_acquire_release_cycle(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        catalog.acquire(keys)
        catalog.acquire(keys)
        assert catalog.live_deltas == 2
        assert all(s.refcount == 2 for s in segments)
        catalog.release(keys)
        catalog.release(keys)
        assert catalog.live_deltas == 0
        assert all(s.refcount == 0 for s in segments)

    def test_release_underflow_guarded(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        with pytest.raises(RuntimeError, match="underflow"):
            catalog.release(keys)

    def test_retire_refused_while_referenced(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        catalog.acquire(keys)
        with pytest.raises(TemplateInUse):
            catalog.retire(segments[0])
        catalog.release(keys)
        used_before = catalog.pool.used_bytes
        catalog.retire(segments[0])
        assert catalog.pool.used_bytes == used_before - segments[0].full_bytes


class TestResidency:
    def test_first_fork_promotes_then_cached(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        assert len(catalog.missing_on(0, keys)) == len(keys)
        promoted, nbytes, cost_ms = catalog.promote(0, keys, now=10.0)
        assert len(promoted) == len(keys)
        assert nbytes == sum(s.full_bytes for s in segments)
        assert cost_ms > 0
        assert catalog.missing_on(0, keys) == []
        again, zero_bytes, zero_ms = catalog.promote(0, keys, now=20.0)
        assert again == [] and zero_bytes == 0 and zero_ms == 0.0
        assert catalog.promotions == len(keys)

    def test_replica_bytes_per_node_and_cluster(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        catalog.promote(0, keys, now=0.0)
        catalog.promote(1, keys, now=0.0)
        per_node = sum(s.full_bytes for s in segments)
        assert catalog.replica_bytes(0) == per_node
        assert catalog.replica_bytes() == 2 * per_node

    def test_hot_guard_protects_last_replica(self, regions):
        catalog = make_catalog(hot_window_ms=1_000.0)
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        catalog.promote(0, keys, now=0.0)
        # Within the hot window, node 0 holds each segment's only
        # replica: nothing may be evicted.
        assert catalog.evictable_replicas(0, now=500.0) == []
        # A second replica lifts the guard (the pool re-promotes is not
        # even needed — node 1 still serves local forks).
        catalog.promote(1, keys, now=600.0)
        assert len(catalog.evictable_replicas(0, now=700.0)) == len(keys)
        # Past the window the last replica becomes fair game too.
        catalog.drop_replicas(1)
        assert len(catalog.evictable_replicas(0, now=5_000.0)) == len(keys)

    def test_drop_replicas_preserves_pool_copy(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        keys = tuple(s.key for s in segments)
        catalog.promote(0, keys, now=0.0)
        used = catalog.pool.used_bytes
        dropped = catalog.drop_replicas(0)
        assert {s.segment_id for s in dropped} == {s.segment_id for s in segments}
        assert catalog.pool.used_bytes == used  # crash loses no templates
        # And the next fork on any node simply re-promotes.
        promoted, nbytes, _ = catalog.promote(2, keys, now=1.0)
        assert nbytes == sum(s.full_bytes for s in segments)

    def test_retire_refused_while_replicated(self, regions):
        catalog = make_catalog()
        segments, _, _ = catalog.ensure_segments(regions)
        catalog.promote(0, (segments[0].key,), now=0.0)
        with pytest.raises(TemplateInUse):
            catalog.retire(segments[0])
        catalog.drop_replica(0, segments[0])
        catalog.retire(segments[0])
        assert segments[0].key not in catalog._segments
