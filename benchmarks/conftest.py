"""Shared infrastructure for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper's
evaluation: a module-scoped fixture runs the experiment driver, writes
the rendered table(s) to ``benchmarks/results/<experiment>.txt``, and
the benchmark tests measure the core operations that experiment leans
on while asserting the reproduced *shape* (who wins, rough factors).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.experiments import run_pressure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def pressure_sweep():
    """The Figures 10-11 pool-size sweep, shared across bench modules."""
    return run_pressure()


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a rendered experiment table for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
