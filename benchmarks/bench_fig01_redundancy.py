"""Figure 1: memory redundancy in serverless workloads.

Reproduces (a) same-function redundancy vs chunk size with ASLR off,
(b) the same with ASLR on, and (c) the cross-function redundancy matrix
at 64 B chunks.  The benchmark measures the Section-2 measurement
primitive itself (one pairwise redundancy computation).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.study import (
    FIG1_CHUNK_SIZES,
    cross_function_matrix,
    same_function_redundancy,
)
from repro.analysis.tables import render_matrix, render_table
from repro.memory.redundancy import measure_redundancy
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def fig1_data():
    suite = FunctionBenchSuite.default()
    plain = same_function_redundancy(suite, aslr=False, content_scale=SCALE)
    aslr = same_function_redundancy(suite, aslr=True, content_scale=SCALE)
    matrix = cross_function_matrix(suite, content_scale=SCALE)

    def table(data, title):
        rows = [
            [fn] + [f"{by_chunk[c]:.3f}" for c in FIG1_CHUNK_SIZES]
            for fn, by_chunk in data.items()
        ]
        return render_table(
            ["function"] + [f"{c}B" for c in FIG1_CHUNK_SIZES], rows, title=title
        )

    text = "\n\n".join(
        [
            table(plain, "Fig 1a: same-function redundancy (ASLR disabled)"),
            table(aslr, "Fig 1b: same-function redundancy (ASLR enabled)"),
            render_matrix(
                list(suite.names()),
                matrix,
                title="Fig 1c: cross-function redundancy @64B",
            ),
        ]
    )
    write_result("fig01_redundancy", text)
    return suite, plain, aslr, matrix


def test_fig1_redundancy_measurement(benchmark, fig1_data):
    suite, plain, aslr, matrix = fig1_data

    # Shape assertions against the paper's findings.
    for function, by_chunk in plain.items():
        assert by_chunk[64] > 0.75, f"{function}: 64B redundancy too low"
        assert by_chunk[1024] < by_chunk[64], f"{function}: no chunk-size decay"
    for function in plain:
        drop = plain[function][64] - aslr[function][64]
        assert drop < 0.25, f"{function}: ASLR collapsed redundancy"
    for (row, col), value in matrix.items():
        assert value > 0.4, f"cross redundancy {row} vs {col} too low"

    # Benchmark: one pairwise Section-2 measurement at 64B chunks.
    profile = suite.get("LinAlg")
    image_a = profile.synthesize(900, content_scale=SCALE)
    image_b = profile.synthesize(901, content_scale=SCALE)
    result = benchmark(measure_redundancy, image_b, image_a, 64)
    assert result.redundancy > 0.75
