"""Figure 15: sensitivity to the keep-dedup period.

Longer keep-dedup windows keep dedup sandboxes available to absorb
would-be cold starts; beyond a threshold the hoarded state itself causes
pressure.  The paper reports 10-38% fewer cold starts than no-dedup at
the good settings, degrading at 20 minutes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig15


@pytest.fixture(scope="module")
def fig15():
    result = run_fig15()
    write_result("fig15_keep_dedup", result.render())
    return result


def test_fig15_keep_dedup_shape(benchmark, fig15):
    cold = fig15.cold_starts
    no_dedup = cold["No Dedup"]
    dedup_settings = {k: v for k, v in cold.items() if k != "No Dedup"}

    # Every keep-dedup setting beats having no dedup state at all.
    for setting, count in dedup_settings.items():
        assert count < no_dedup, setting

    # The best setting achieves a material reduction (paper: 10-38%).
    best = min(dedup_settings.values())
    assert 1 - best / no_dedup > 0.08
    # Reproduction note: under sustained pressure, eviction retires
    # dedup sandboxes before their keep-dedup expiry, so the sweep is
    # flatter than the paper's 20-minute degradation (EXPERIMENTS.md).

    benchmark(dict, fig15.cold_starts)
