"""Figure 12: can tuned fixed keep-alive periods match Medes?

Sweeps keep-warm windows of 5/10/15/20 minutes on the representative
workload and compares against Medes; the paper reports a 38.2% cold
start reduction for Medes over the best fixed setting.

Reproduction note (also in EXPERIMENTS.md): with the workload-agnostic
LRU eviction this controller uses, sustained memory pressure largely
neutralizes the keep-alive period (eviction acts as an implicit adaptive
keep-alive), so the sweep is flatter than the paper's; the figure's main
claim — Medes clearly below every fixed setting — reproduces.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig12


@pytest.fixture(scope="module")
def fig12():
    result = run_fig12()
    write_result("fig12_keepalive_sweep", result.render())
    return result


def test_fig12_medes_beats_every_keep_alive(benchmark, fig12):
    cold = fig12.cold_starts
    medes = cold["Medes"]
    fixed_settings = {k: v for k, v in cold.items() if k != "Medes"}

    for setting, count in fixed_settings.items():
        assert medes < count, f"Medes not better than {setting}"

    best_fixed = min(fixed_settings.values())
    reduction = 1 - medes / best_fixed
    # The paper reports 38.2% over the best fixed keep-alive; require a
    # clearly material reduction here.
    assert reduction > 0.10

    benchmark(dict, fig12.cold_starts)
