"""Throughput of the fingerprint kernel: legacy batch loop vs vectorized.

The fingerprint scan is the per-page fixed cost of every dedup op
(Section 4.1.2: one rolling-marker pass plus ~5 chunk hashes per page),
so its pages/sec bounds how fast the data plane can drain dedup queues.
This benchmark pins the VectorCDC-style rewrite against the kernel it
replaced, on identical buffers:

* ``legacy`` — the pre-rewrite batch path, reimplemented inline below:
  one vectorized marker scan, then a *hit-by-hit Python loop* for the
  spacing/cardinality thinning, a Python list of ``raw[s : s + 64]``
  slice objects, and ``hash_bytes_many`` over those slices.
* ``sha1`` — the current kernel: segmented vectorized thinning
  (``batch_enforce_spacing``), one fancy-indexed gather
  (``gather_chunks``), and slice-free row hashing (``hash_rows_sha1``).
  Bit-identical output to ``legacy`` and to the per-page oracle.
* ``poly64`` — the same kernel with the opt-in vectorized polynomial
  digest (``hash_kind=POLY64``): no per-chunk work at all, one matmul.

Methodology matches ``bench_dedup_throughput``: heavy timing jitter on
this box, so each (legacy, sha1, poly64) sample is taken *paired* —
back-to-back on the same buffer, repeated ``reps`` times, keeping each
path's minimum.  The sweep doubles the page count up to 256 Ki pages
(a 1 GiB buffer at 4 KiB pages) to show the ratio holding at scale,
where the legacy path's per-hit interpreter dispatch dominates.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_fingerprint_kernel.py

or via pytest for a reduced smoke configuration.  Results land in
``BENCH_fingerprint_kernel.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import time

import numpy as np

from benchmarks.conftest import write_result
from repro._util import hash_bytes_many, rng_for
from repro.analysis.tables import render_table
from repro.memory.chunks import batch_marker_ends
from repro.memory.fingerprint import (
    FingerprintConfig,
    HashKind,
    batch_fingerprint_arrays,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_fingerprint_kernel.json"

DEFAULT_PAGE_SIZE = 4096
DEFAULT_SIZES = (4096, 16384, 65536, 262144)
DEFAULT_REPS = 3


def legacy_batch_fingerprints(
    data: np.ndarray, page_size: int, cfg: FingerprintConfig
) -> tuple[list[list[int]], list[int]]:
    """The pre-rewrite batch kernel, preserved as the baseline.

    This is the kernel the vectorized rewrite replaced (verbatim control
    flow, trimmed of the PageFingerprint packaging): the marker scan was
    already vectorized, but the greedy spacing/cardinality thinning ran
    hit by hit in Python, and chunk hashing materialized one ``bytes``
    slice per sampled chunk.  Returns (offsets per page, flat digests)
    so the comparison excludes object construction both sides share.
    """
    num_pages = len(data) // page_size
    ends = batch_marker_ends(
        data,
        page_size,
        mask=cfg.marker_mask,
        value=cfg.marker_value,
        min_position=cfg.chunk_size - 1,
    )
    out: list[list[int]] = [[] for _ in range(num_pages)]
    spacing = cfg.chunk_size
    cardinality = cfg.cardinality
    delta = cfg.chunk_size - 1
    page = -1
    last = -1
    kept = 0
    for pos in ends.tolist():
        p = pos // page_size
        if p != page:
            page, last, kept = p, -1, 0
        if kept >= cardinality:
            continue
        if last < 0 or pos - last >= spacing:
            out[p].append(pos - p * page_size - delta)
            last = pos
            kept += 1
    raw = data.tobytes()
    chunk_size = cfg.chunk_size
    chunks = [
        raw[index * page_size + s : index * page_size + s + chunk_size]
        for index in range(num_pages)
        for s in out[index]
    ]
    return out, hash_bytes_many(chunks, cfg.digest_bits).tolist()


def make_buffer(num_pages: int, page_size: int) -> np.ndarray:
    """A deterministic uniform-random buffer (~16 marker hits/page)."""
    rng = rng_for("fingerprint-kernel-bench", num_pages, page_size)
    return rng.integers(0, 256, size=num_pages * page_size, dtype=np.uint8)


def run_size(num_pages: int, page_size: int, reps: int) -> dict:
    """Paired min-of-reps timing of all three kernels on one buffer."""
    data = make_buffer(num_pages, page_size)
    sha1_cfg = FingerprintConfig()
    poly_cfg = FingerprintConfig(hash_kind=HashKind.POLY64)

    # Warm-up (allocator, caches) + output equivalence check.
    legacy_offsets, legacy_digests = legacy_batch_fingerprints(
        data, page_size, sha1_cfg
    )
    digests, offsets, counts = batch_fingerprint_arrays(data, page_size, sha1_cfg)
    assert digests.tolist() == legacy_digests
    assert np.split(offsets, np.cumsum(counts)[:-1]) is not None
    batch_fingerprint_arrays(data, page_size, poly_cfg)

    best = {"legacy": math.inf, "sha1": math.inf, "poly64": math.inf}
    for _ in range(reps):
        t0 = time.perf_counter()
        legacy_batch_fingerprints(data, page_size, sha1_cfg)
        best["legacy"] = min(best["legacy"], time.perf_counter() - t0)
        t0 = time.perf_counter()
        batch_fingerprint_arrays(data, page_size, sha1_cfg)
        best["sha1"] = min(best["sha1"], time.perf_counter() - t0)
        t0 = time.perf_counter()
        batch_fingerprint_arrays(data, page_size, poly_cfg)
        best["poly64"] = min(best["poly64"], time.perf_counter() - t0)
    chunks = int(counts.sum())
    return {
        "pages": num_pages,
        "buffer_mb": round(num_pages * page_size / (1024 * 1024), 1),
        "chunks": chunks,
        "legacy_pages_per_s": round(num_pages / best["legacy"], 1),
        "sha1_pages_per_s": round(num_pages / best["sha1"], 1),
        "poly64_pages_per_s": round(num_pages / best["poly64"], 1),
        "sha1_speedup": round(best["legacy"] / best["sha1"], 3),
        "poly64_speedup": round(best["legacy"] / best["poly64"], 3),
    }


def run_sweep(
    sizes=DEFAULT_SIZES, page_size: int = DEFAULT_PAGE_SIZE, reps: int = DEFAULT_REPS
) -> dict:
    results = [run_size(n, page_size, reps) for n in sizes]
    largest = results[-1]
    return {
        "benchmark": "fingerprint_kernel",
        "units": "pages/sec of the batch fingerprint kernel, paired min-of-reps",
        "config": {
            "page_size": page_size,
            "reps": reps,
            "chunk_size": FingerprintConfig().chunk_size,
            "cardinality": FingerprintConfig().cardinality,
            "python": platform.python_version(),
        },
        "results": results,
        "summary": {
            "sha1_speedup_at_max_pages": largest["sha1_speedup"],
            "poly64_speedup_at_max_pages": largest["poly64_speedup"],
            "max_pages": largest["pages"],
        },
    }


def _render(report: dict) -> str:
    rows = [
        [
            f"{r['pages']:,}",
            f"{r['buffer_mb']:,.0f}",
            f"{r['legacy_pages_per_s']:,.0f}",
            f"{r['sha1_pages_per_s']:,.0f}",
            f"{r['poly64_pages_per_s']:,.0f}",
            f"{r['sha1_speedup']:.2f}x",
            f"{r['poly64_speedup']:.2f}x",
        ]
        for r in report["results"]
    ]
    return render_table(
        ["pages", "MB", "legacy p/s", "sha1 p/s", "poly64 p/s", "sha1", "poly64"],
        rows,
        title="Fingerprint kernel throughput: legacy batch loop vs vectorized",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", default=",".join(str(n) for n in DEFAULT_SIZES)
    )
    parser.add_argument("--page-size", type=int, default=DEFAULT_PAGE_SIZE)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    args = parser.parse_args(argv)
    report = run_sweep(
        sizes=tuple(int(x) for x in args.sizes.split(",")),
        page_size=args.page_size,
        reps=args.reps,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("fingerprint_kernel", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_fingerprint_kernel_smoke():
    """Reduced sweep: the vectorized kernels must beat the legacy loop.

    The legacy marker scan was already vectorized, so at small page
    counts the two SHA-1 paths are near parity (the win is the per-hit
    Python loop, whose cost grows with the buffer) — the speedup gate
    applies at the largest smoke size only.
    """
    report = run_sweep(sizes=(4096, 16384), reps=2)
    for result in report["results"]:
        # The polynomial path removes the per-chunk SHA-1 calls as well,
        # so it must beat the per-slice legacy loop at every size.
        assert result["poly64_speedup"] > 1.0, result
    assert report["results"][-1]["sha1_speedup"] > 1.0, report["results"]


if __name__ == "__main__":
    main()
