"""Table 3: percent memory savings per function environment.

One base sandbox per function; a second (executed) sandbox of each
function is deduplicated against the cluster and its savings reported.
The benchmark measures the dedup op itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.study import per_function_microbench
from repro.analysis.tables import render_table
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0

#: Paper Table 3 percent savings, for side-by-side reporting.
PAPER_SAVINGS = {
    "Vanilla": 27.06,
    "LinAlg": 32.81,
    "ImagePro": 43.03,
    "VideoPro": 25.46,
    "MapReduce": 15.94,
    "HTMLServe": 44.30,
    "AuthEnc": 21.48,
    "FeatureGen": 38.89,
    "RNNModel": 58.03,
    "ModelTrain": 30.09,
}


@pytest.fixture(scope="module")
def table3():
    suite = FunctionBenchSuite.default()
    micro = per_function_microbench(suite, content_scale=SCALE, seed=5)
    rows = []
    for profile in suite:
        result = micro[profile.name]
        rows.append(
            (
                profile.name,
                f"{result.savings_fraction * 100:.1f}%",
                f"{result.savings_fraction * profile.memory_mb:.1f}MB / {profile.memory_mb:g}MB",
                f"{PAPER_SAVINGS[profile.name]:.1f}%",
            )
        )
    text = render_table(
        ["function", "measured savings", "saved / footprint", "paper savings"],
        rows,
        title="Table 3: per-function dedup memory savings",
    )
    write_result("table3_savings", text)
    return suite, micro


def test_table3_savings_shape(benchmark, table3):
    suite, micro = table3

    fractions = {name: m.savings_fraction for name, m in micro.items()}
    # Savings are material for every function (the Table-3 band).
    for name, fraction in fractions.items():
        assert 0.15 < fraction < 0.85, name
    # Orderings the paper emphasizes: RNNModel saves the most absolute
    # memory; MapReduce is among the weakest savers.
    absolute = {
        name: fractions[name] * suite.get(name).memory_mb for name in fractions
    }
    assert absolute["RNNModel"] == max(absolute.values())
    assert fractions["MapReduce"] <= sorted(fractions.values())[3]

    # Benchmark: one full dedup op (fingerprints + lookups + patches).
    from repro.analysis.study import per_function_microbench as run_once

    result = benchmark.pedantic(
        run_once,
        kwargs=dict(
            suite=FunctionBenchSuite.subset(["LinAlg"]),
            content_scale=SCALE,
            seed=6,
            verify=False,
        ),
        rounds=3,
        iterations=1,
    )
    assert result["LinAlg"].savings_fraction > 0.15
