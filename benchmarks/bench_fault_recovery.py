"""Startup latency and fallback behaviour under injected node crashes.

The fault layer (DESIGN.md §11) lets a run lose nodes mid-trace and
keep serving: the controller reconciles orphaned refcounts, rehomes
dedup tables onto surviving byte-identical replicas where it can, and
falls back to cold starts where it cannot.  This benchmark replays the
same Azure-style trace on the Medes platform at 0, 1 and 2 injected
node crashes (each node restarts after a fixed outage window) and
reports the startup-latency CDF (p50/p90/p99), the cold-start and
cold-fallback rates, the recovery counters, and the measured MTTR.

The claim being measured: a single node crash degrades tail startup
latency but aborts nothing — every request completes, with the lost
dedup capacity absorbed as replica fallbacks and a bounded rise in the
cold-fallback rate.

Results go to ``BENCH_fault_recovery.json`` at the repo root.

Run standalone for the full sweep::

    PYTHONPATH=src python -m benchmarks.bench_fault_recovery

or via pytest for a reduced smoke configuration.
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import platform as platform_module

from benchmarks.conftest import write_result

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.analysis.experiments import full_workload
from repro.analysis.tables import render_table
from repro.core.policy import MedesPolicyConfig
from repro.faults.schedule import FaultSchedule, FaultsConfig, NodeCrash
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_fault_recovery.json"

DEFAULT_CRASH_COUNTS = (0, 1, 2)
DEFAULT_NODES = 3
DEFAULT_NODE_MB = 1024.0
DEFAULT_DURATION_MIN = 10.0
DEFAULT_SEED = 17
#: Fraction of the trace at which each successive crash lands, and the
#: outage length (crash -> restart) as a fraction of the trace.
CRASH_AT_FRACTIONS = (0.3, 0.6)
OUTAGE_FRACTION = 0.1

MEDES = MedesPolicyConfig()


def crash_schedule(crashes: int, duration_min: float) -> FaultsConfig | None:
    """0/1/2 staggered crash+restart events inside the trace window."""
    if crashes == 0:
        return None
    duration_ms = duration_min * 60_000.0
    events = tuple(
        NodeCrash(
            at_ms=frac * duration_ms,
            node_id=index + 1,
            restart_at_ms=(frac + OUTAGE_FRACTION) * duration_ms,
        )
        for index, frac in enumerate(CRASH_AT_FRACTIONS[:crashes])
    )
    return FaultsConfig(schedule=FaultSchedule(node_crashes=events))


def run_point(crashes: int, nodes: int, duration_min: float, seed: int) -> dict:
    """One crash count: same trace, same seed, only the schedule varies."""
    suite, trace = full_workload(duration_min, seed)
    # Reset the process-global id counters so the points mint identical
    # ids and any delta is attributable to the injected crashes alone.
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    config = ClusterConfig(
        nodes=nodes,
        node_memory_mb=DEFAULT_NODE_MB,
        seed=1,
        faults=crash_schedule(crashes, duration_min),
    )
    platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
    metrics = platform.run(trace).metrics
    completed = metrics.completed_records()
    requests = len(metrics.requests)
    cold = metrics.cold_starts()
    return {
        "crashes": crashes,
        "requests": requests,
        "completed": len(completed),
        "startup_ms_p50": round(metrics.startup_percentile(50), 3),
        "startup_ms_p90": round(metrics.startup_percentile(90), 3),
        "startup_ms_p99": round(metrics.startup_percentile(99), 3),
        "cold_starts": cold,
        "cold_start_rate": round(cold / requests, 4) if requests else 0.0,
        "restore_cold_fallbacks": metrics.restore_cold_fallbacks,
        "cold_fallback_rate": (
            round(metrics.restore_cold_fallbacks / requests, 4) if requests else 0.0
        ),
        "restore_replica_fallbacks": metrics.restore_replica_fallbacks,
        "requests_rescheduled": metrics.requests_rescheduled,
        "crash_purged_sandboxes": metrics.crash_purged_sandboxes,
        "crash_reconciled_refs": metrics.crash_reconciled_refs,
        "mttr_ms": round(metrics.mttr_ms(), 3),
    }


def run_sweep(
    crash_counts: tuple[int, ...] = DEFAULT_CRASH_COUNTS,
    nodes: int = DEFAULT_NODES,
    duration_min: float = DEFAULT_DURATION_MIN,
    seed: int = DEFAULT_SEED,
) -> dict:
    results = [run_point(n, nodes, duration_min, seed) for n in crash_counts]
    return {
        "benchmark": "fault_recovery",
        "units": "startup-latency percentiles (ms) and rates per crash count",
        "config": {
            "crash_counts": list(crash_counts),
            "nodes": nodes,
            "node_memory_mb": DEFAULT_NODE_MB,
            "trace_minutes": duration_min,
            "outage_minutes": OUTAGE_FRACTION * duration_min,
            "seed": seed,
            "python": platform_module.python_version(),
        },
        "results": results,
    }


def _render(report: dict) -> str:
    rows = []
    for point in report["results"]:
        rows.append(
            [
                point["crashes"],
                f"{point['startup_ms_p50']:.1f}",
                f"{point['startup_ms_p90']:.1f}",
                f"{point['startup_ms_p99']:.1f}",
                f"{100 * point['cold_start_rate']:.1f}%",
                f"{100 * point['cold_fallback_rate']:.2f}%",
                point["restore_replica_fallbacks"],
                point["crash_purged_sandboxes"],
                f"{point['mttr_ms'] / 1000:.0f}s",
            ]
        )
    return render_table(
        [
            "crashes",
            "p50",
            "p90",
            "p99",
            "cold rate",
            "cold fallback",
            "rehomed",
            "purged",
            "MTTR",
        ],
        rows,
        title="Startup latency and fallback rates under injected node crashes",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--crashes", type=int, nargs="+", default=list(DEFAULT_CRASH_COUNTS)
    )
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--duration-min", type=float, default=DEFAULT_DURATION_MIN)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)
    report = run_sweep(
        crash_counts=tuple(args.crashes),
        nodes=args.nodes,
        duration_min=args.duration_min,
        seed=args.seed,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("fault_recovery", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_fault_recovery_smoke():
    """Reduced sweep: crashes must degrade, never abort.

    Every request completes at every crash count, the crashed points
    actually injected their faults (MTTR matches the configured outage
    window), and recovery work shows up in the counters.
    """
    report = run_sweep(duration_min=4.0)
    baseline, *crashed = report["results"]
    assert baseline["mttr_ms"] == 0.0
    assert baseline["restore_cold_fallbacks"] == 0
    outage_ms = report["config"]["outage_minutes"] * 60_000.0
    for point in report["results"]:
        assert point["completed"] == point["requests"] == baseline["requests"]
    for point in crashed:
        assert abs(point["mttr_ms"] - outage_ms) < 1.0, point
        assert point["crash_purged_sandboxes"] > 0, point


if __name__ == "__main__":
    main()
