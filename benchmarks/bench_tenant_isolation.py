"""Isolation tax and leak signal of tenant-scoped dedup domains (§15).

Two questions, one benchmark:

1. **Isolation tax** — what do dedup domains cost?  The Fig-10 pressure
   ladder (the paper's 40/30/20 GB pool points, scaled) is replayed with
   every function owned by its own tenant, under three domain policies:
   ``all`` (``dedup_domains=off``, cluster-wide sharing — the paper's
   behaviour), ``10`` (trust groups of ten tenants), and ``1``
   (``per_tenant``, no cross-tenant merging at all).  Reported per rung:
   mean cluster memory, cold-start rate, dedup savings, and startup
   latency percentiles — the price of shrinking the sharing pool.

2. **Leak signal** — what does isolation buy?  The seeded remote-dedup
   attack scenario (:mod:`repro.tenancy.attack`) is run under each
   policy and reports the attacker's distinguishing accuracy between
   planted-hit and planted-miss probes: ~1.0 whenever attacker and
   victim share a domain (a measurable channel), ~0.5 (a coin flip)
   when domains separate them.

Results go to ``BENCH_tenant_isolation.json`` at the repo root.

Run standalone for the full ladder::

    PYTHONPATH=src python -m benchmarks.bench_tenant_isolation

or via pytest for a reduced smoke configuration.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import pathlib
import platform as platform_module

from benchmarks.conftest import write_result

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.analysis.experiments import full_workload
from repro.analysis.tables import render_table
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform
from repro.tenancy.attack import ATTACKER_TENANT, VICTIM_TENANT, AttackConfig, run_attack
from repro.tenancy.domains import DedupDomainMode, TenantConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_tenant_isolation.json"

#: The Figure-10 ladder: the paper's 40/30/20 GB cluster pools, scaled.
DEFAULT_POOL_MB = (3072.0, 2304.0, 1792.0)
DEFAULT_NODES = 2
DEFAULT_DURATION_MIN = 20.0
DEFAULT_SEED = 11

MEDES = MedesPolicyConfig()


def domain_policies(functions: tuple[str, ...]) -> dict[str, TenantConfig]:
    """The domain-size ladder: every function is its own tenant, and the
    policy decides how many tenants pool their dedup state."""
    tenants = [f"tenant-{name}" for name in functions]
    groups_of_ten = tuple(
        (f"group-{index}", tuple(tenants[index * 10 : (index + 1) * 10]))
        for index in range((len(tenants) + 9) // 10)
    )
    return {
        "all": TenantConfig(),
        "10": TenantConfig(
            mode=DedupDomainMode.TRUST_GROUPS, trust_groups=groups_of_ten
        ),
        "1": TenantConfig(mode=DedupDomainMode.PER_TENANT),
    }


def _pct(metrics, pct, start: StartType | None, metric: str = "startup") -> float:
    value = metrics.latency_percentile(pct, start_type=start, metric=metric)
    return None if math.isnan(value) else round(value, 3)


def run_point(pool_mb: float, nodes: int, duration_min: float, seed: int) -> dict:
    """One pool size under each domain policy, same trace and tenants."""
    suite, trace = full_workload(duration_min, seed)
    tenant_of = {name: f"tenant-{name}" for name in suite.names()}
    trace = trace.with_tenants(tenant_of)
    samples = {}
    for label, policy in domain_policies(suite.names()).items():
        # Reset the process-global id counters so the compared runs mint
        # identical ids and any delta is attributable to domains alone.
        sandbox_module._sandbox_ids = itertools.count(1)
        checkpoint_module._checkpoint_ids = itertools.count(1)
        config = ClusterConfig(
            nodes=nodes,
            node_memory_mb=pool_mb / nodes,
            seed=1,
            dedup_domains=policy,
        )
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
        metrics = platform.run(trace).metrics
        counts = metrics.start_counts()
        requests = len(metrics.requests)
        dedup_savings = [op.savings_fraction for op in metrics.dedup_ops]
        samples[label] = {
            "requests": requests,
            "domains": len(platform.registry.domains()),
            "cold_starts": counts.get(StartType.COLD, 0),
            "warm_starts": counts.get(StartType.WARM, 0),
            "dedup_starts": counts.get(StartType.DEDUP, 0),
            "cold_start_rate": round(counts.get(StartType.COLD, 0) / requests, 4),
            "bases_created": metrics.bases_created,
            "dedup_ops": len(metrics.dedup_ops),
            "mean_dedup_savings": round(
                sum(dedup_savings) / len(dedup_savings), 4
            )
            if dedup_savings
            else None,
            "mean_memory_mb": round(metrics.mean_memory_bytes() / 2**20, 1),
            "p50_e2e_ms": _pct(metrics, 50, None, "e2e"),
            "p99_e2e_ms": _pct(metrics, 99, None, "e2e"),
            "p50_startup_ms": _pct(metrics, 50, None),
            "p99_startup_ms": _pct(metrics, 99, None),
            "p50_startup_dedup_ms": _pct(metrics, 50, StartType.DEDUP),
        }
    shared = samples["all"]
    for label, sample in samples.items():
        sample["memory_tax_mb"] = round(
            sample["mean_memory_mb"] - shared["mean_memory_mb"], 1
        )
        sample["cold_rate_tax"] = round(
            sample["cold_start_rate"] - shared["cold_start_rate"], 4
        )
    return {
        "pool_mb": pool_mb,
        "requests": shared["requests"],
        "domain_size": samples,
    }


def leak_curve(rounds: int, seed: int) -> list[dict]:
    """The attacker's distinguishing accuracy under each domain policy."""
    same_group = TenantConfig(
        mode=DedupDomainMode.TRUST_GROUPS,
        trust_groups=(("shared", (VICTIM_TENANT, ATTACKER_TENANT)),),
    )
    cross_group = TenantConfig(
        mode=DedupDomainMode.TRUST_GROUPS,
        trust_groups=(
            ("victims", (VICTIM_TENANT,)),
            ("attackers", (ATTACKER_TENANT,)),
        ),
    )
    policies = [
        ("off", TenantConfig()),
        ("trust_groups:same-group", same_group),
        ("trust_groups:cross-group", cross_group),
        ("per_tenant", TenantConfig(mode=DedupDomainMode.PER_TENANT)),
    ]
    config = AttackConfig(rounds=rounds, seed=seed)
    curve = []
    for label, policy in policies:
        result = run_attack(policy, config)
        curve.append(
            {
                "policy": label,
                "rounds": rounds,
                "leak_accuracy": round(result.leak_accuracy, 4),
                "mean_hit_startup_ms": round(result.mean_hit_startup_ms, 1),
                "mean_miss_startup_ms": round(result.mean_miss_startup_ms, 1),
                "hit_start_types": sorted(
                    {
                        o.second_start_type
                        for o in result.observations
                        if o.kind == "hit"
                    }
                ),
                "miss_start_types": sorted(
                    {
                        o.second_start_type
                        for o in result.observations
                        if o.kind == "miss"
                    }
                ),
            }
        )
    return curve


def run_sweep(
    pool_mb: tuple[float, ...] = DEFAULT_POOL_MB,
    nodes: int = DEFAULT_NODES,
    duration_min: float = DEFAULT_DURATION_MIN,
    seed: int = DEFAULT_SEED,
    attack_rounds: int = 12,
) -> dict:
    results = [run_point(pool, nodes, duration_min, seed) for pool in pool_mb]
    return {
        "benchmark": "tenant_isolation",
        "units": "isolation tax per Fig-10 pool point; leak accuracy per policy",
        "config": {
            "pool_mb": list(pool_mb),
            "nodes": nodes,
            "trace_minutes": duration_min,
            "seed": seed,
            "attack_rounds": attack_rounds,
            "python": platform_module.python_version(),
        },
        "results": results,
        "leak_signal": leak_curve(attack_rounds, seed),
    }


def _render(report: dict) -> str:
    rows = []
    for point in report["results"]:
        for label in ("all", "10", "1"):
            sample = point["domain_size"][label]
            rows.append(
                [
                    f"{point['pool_mb']:.0f}MB",
                    label,
                    sample["domains"],
                    sample["cold_starts"],
                    f"{sample['cold_start_rate']:.3f}",
                    f"{sample['mean_memory_mb']:.0f}",
                    f"{sample['memory_tax_mb']:+.0f}",
                    sample["p50_startup_ms"],
                    sample["p99_startup_ms"],
                ]
            )
    tax = render_table(
        [
            "pool",
            "domain",
            "domains",
            "cold",
            "cold rate",
            "mem MB",
            "tax MB",
            "p50 start",
            "p99 start",
        ],
        rows,
        title="Fig 10 pressure ladder under dedup-domain sizes all/10/1",
    )
    leak_rows = [
        [
            entry["policy"],
            f"{entry['leak_accuracy']:.3f}",
            f"{entry['mean_hit_startup_ms']:.0f}",
            f"{entry['mean_miss_startup_ms']:.0f}",
        ]
        for entry in report["leak_signal"]
    ]
    leak = render_table(
        ["policy", "leak accuracy", "hit start ms", "miss start ms"],
        leak_rows,
        title="Remote-dedup attack: distinguishing accuracy per policy",
    )
    return tax + "\n\n" + leak


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pool-mb", type=float, nargs="+", default=list(DEFAULT_POOL_MB)
    )
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--duration-min", type=float, default=DEFAULT_DURATION_MIN)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--attack-rounds", type=int, default=12)
    args = parser.parse_args(argv)
    report = run_sweep(
        pool_mb=tuple(args.pool_mb),
        nodes=args.nodes,
        duration_min=args.duration_min,
        seed=args.seed,
        attack_rounds=args.attack_rounds,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("tenant_isolation", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_tenant_isolation_smoke():
    """Reduced sweep pinning both acceptance claims.

    The channel must be statistically visible under global sharing and
    null under per-tenant domains; the tax rows must partition the
    registry as configured (one domain under ``all``, many under ``1``).
    """
    report = run_sweep(
        pool_mb=(DEFAULT_POOL_MB[0],), duration_min=6.0, attack_rounds=4
    )
    leak = {entry["policy"]: entry["leak_accuracy"] for entry in report["leak_signal"]}
    assert leak["off"] >= 0.9, leak
    assert leak["trust_groups:same-group"] >= 0.9, leak
    assert leak["trust_groups:cross-group"] <= 0.6, leak
    assert leak["per_tenant"] <= 0.6, leak
    for point in report["results"]:
        sizes = point["domain_size"]
        assert sizes["all"]["domains"] == 1, sizes["all"]
        assert sizes["1"]["domains"] > sizes["10"]["domains"] >= 1, sizes
        assert sizes["all"]["memory_tax_mb"] == 0.0


if __name__ == "__main__":
    main()
