"""Figure 2: possible memory savings in real-world serverless workloads.

Replays an Azure-style trace through the keep-alive occupancy model and
discounts idle sandboxes by their measured dedup savings; the paper
reports up to ~30% achievable savings over keep-alive usage.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.study import measure_function_savings, savings_timeline
from repro.analysis.tables import render_table
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def fig2_data():
    suite = FunctionBenchSuite.default()
    trace = AzureTraceGenerator(seed=2).generate(30, suite.names())
    savings = measure_function_savings(suite, content_scale=SCALE)
    points = savings_timeline(trace, suite, savings=savings)
    rows = [
        (
            f"{p.time_s:.0f}",
            f"{p.keep_alive_mb:.0f}",
            f"{p.after_dedup_mb:.0f}",
            f"{(1 - p.after_dedup_mb / p.keep_alive_mb) * 100 if p.keep_alive_mb else 0:.1f}%",
        )
        for p in points[:: max(1, len(points) // 40)]
    ]
    text = render_table(
        ["t (s)", "keep-alive MB", "after dedup MB", "saving"],
        rows,
        title="Fig 2: memory savings timeline (30-min Azure-style trace)",
    )
    write_result("fig02_savings_timeline", text)
    return suite, trace, savings, points


def test_fig2_savings_timeline(benchmark, fig2_data):
    suite, trace, savings, points = fig2_data

    busy = [p for p in points if p.keep_alive_mb > 0]
    assert busy
    mean_saving = sum(1 - p.after_dedup_mb / p.keep_alive_mb for p in busy) / len(busy)
    # The paper reports up to ~30% achievable savings; the occupancy
    # model should land in the same regime (material double-digit saving).
    assert 0.10 < mean_saving < 0.75

    result = benchmark(savings_timeline, trace.window(0, 300_000.0), suite, savings=savings)
    assert result
