"""Fig-10 pressure sweep with template sharing on vs off.

Template checkpoints (DESIGN.md §14) factor the cross-function
RUNTIME/LIBRARY regions out of every parked sandbox into shared,
refcounted template segments in the remote-DRAM pool; an idle sandbox
parks as a small per-function delta, and a restart *forks* the node's
template replicas instead of fetching base pages through the fabric.
The first fork on a node pays one batched pool promote; every later
fork moves no start-path bytes at all.

This benchmark replays the paper's Figure-10 pool-size ladder (the
40/30/20 GB points, scaled) on the Medes platform twice per point —
``template_sharing`` off (dedup-only, the paper's behaviour) and on —
and reports cold starts, start-type counts, bytes moved per start, and
startup latency percentiles per start-ladder rung (the vectorized
``RunMetrics.latency_percentile`` readers).  The claim being measured:
at every ladder point template sharing yields *fewer cold starts* and
*fewer start-path bytes moved per request* than dedup alone.

Results go to ``BENCH_template_sharing.json`` at the repo root.

Run standalone for the full ladder::

    PYTHONPATH=src python -m benchmarks.bench_template_sharing

or via pytest for a reduced smoke configuration.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import pathlib
import platform as platform_module

from benchmarks.conftest import write_result

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.analysis.experiments import full_workload
from repro.analysis.tables import render_table
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.metrics import StartType
from repro.platform.platform import PlatformKind, build_platform

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_template_sharing.json"

#: The Figure-10 ladder: the paper's 40/30/20 GB cluster pools, scaled.
DEFAULT_POOL_MB = (3072.0, 2304.0, 1792.0)
DEFAULT_NODES = 2
DEFAULT_DURATION_MIN = 20.0
DEFAULT_SEED = 11

MEDES = MedesPolicyConfig()


def _pct(metrics, pct, start: StartType | None, metric: str = "startup") -> float:
    value = metrics.latency_percentile(pct, start_type=start, metric=metric)
    return None if math.isnan(value) else round(value, 3)


def run_point(pool_mb: float, nodes: int, duration_min: float, seed: int) -> dict:
    """One pool size, Medes with template sharing off and on, same trace."""
    suite, trace = full_workload(duration_min, seed)
    samples = {}
    for sharing in (False, True):
        # Reset the process-global id counters so the paired runs mint
        # identical ids and any delta is attributable to templates alone.
        sandbox_module._sandbox_ids = itertools.count(1)
        checkpoint_module._checkpoint_ids = itertools.count(1)
        config = ClusterConfig(
            nodes=nodes,
            node_memory_mb=pool_mb / nodes,
            seed=1,
            template_sharing=sharing,
        )
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
        metrics = platform.run(trace).metrics
        counts = metrics.start_counts()
        # Bytes moved: every fabric remote read (dedup parks and
        # restores fetch base pages through the fabric) plus the charged
        # template-pool segment promotes — all cluster-interconnect
        # traffic on both sides' park and start paths.  Delta spills
        # stay node-local (SSD, like §9's dedup-cold tables) and move
        # no cluster bytes, so they are charged as latency, not here.
        moved = (
            platform.fabric.stats.remote_bytes
            + metrics.template_promote_bytes
        )
        requests = len(metrics.requests)
        samples[sharing] = {
            "requests": requests,
            "cold_starts": counts.get(StartType.COLD, 0),
            "warm_starts": counts.get(StartType.WARM, 0),
            "dedup_starts": counts.get(StartType.DEDUP, 0),
            "template_starts": counts.get(StartType.TEMPLATE, 0),
            "template_parks": len(metrics.template_ops),
            "template_segments_created": metrics.template_segments_created,
            "template_segments_shared": metrics.template_segments_shared,
            "template_promotions": metrics.template_promotions,
            "template_promote_bytes": metrics.template_promote_bytes,
            "template_pool_rejections": metrics.template_pool_rejections,
            "template_fork_fallbacks": metrics.template_fork_fallbacks,
            "template_evict_parks": metrics.template_evict_parks,
            "template_delta_spills": metrics.template_delta_spills,
            "template_delta_spill_bytes": metrics.template_delta_spill_bytes,
            "template_delta_unspill_bytes": metrics.template_delta_unspill_bytes,
            "start_bytes_moved": moved,
            "bytes_per_start": round(moved / requests, 1),
            "p50_e2e_ms": _pct(metrics, 50, None, "e2e"),
            "p99_e2e_ms": _pct(metrics, 99, None, "e2e"),
            "p50_startup_cold_ms": _pct(metrics, 50, StartType.COLD),
            "p50_startup_dedup_ms": _pct(metrics, 50, StartType.DEDUP),
            "p50_startup_template_ms": _pct(metrics, 50, StartType.TEMPLATE),
        }
    off, on = samples[False], samples[True]
    assert off["requests"] == on["requests"]
    return {
        "pool_mb": pool_mb,
        "requests": off["requests"],
        "off": off,
        "on": on,
        "cold_start_delta": on["cold_starts"] - off["cold_starts"],
        "bytes_per_start_delta": round(
            on["bytes_per_start"] - off["bytes_per_start"], 1
        ),
    }


def run_sweep(
    pool_mb: tuple[float, ...] = DEFAULT_POOL_MB,
    nodes: int = DEFAULT_NODES,
    duration_min: float = DEFAULT_DURATION_MIN,
    seed: int = DEFAULT_SEED,
) -> dict:
    results = [run_point(pool, nodes, duration_min, seed) for pool in pool_mb]
    return {
        "benchmark": "template_sharing",
        "units": "cold starts and start-path bytes per Fig-10 pool point",
        "config": {
            "pool_mb": list(pool_mb),
            "nodes": nodes,
            "trace_minutes": duration_min,
            "seed": seed,
            "python": platform_module.python_version(),
        },
        "results": results,
    }


def _render(report: dict) -> str:
    rows = []
    for point in report["results"]:
        off, on = point["off"], point["on"]
        rows.append(
            [
                f"{point['pool_mb']:.0f}MB",
                off["cold_starts"],
                on["cold_starts"],
                on["template_starts"],
                f"{off['bytes_per_start'] / 1e6:.1f}",
                f"{on['bytes_per_start'] / 1e6:.1f}",
                off["p50_startup_dedup_ms"] or "-",
                on["p50_startup_template_ms"] or "-",
            ]
        )
    return render_table(
        [
            "pool",
            "cold (off)",
            "cold (tmpl)",
            "tmpl starts",
            "MB/start (off)",
            "MB/start (tmpl)",
            "p50 dedup ms",
            "p50 tmpl ms",
        ],
        rows,
        title="Fig 10 pressure sweep: template sharing off vs on",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pool-mb", type=float, nargs="+", default=list(DEFAULT_POOL_MB)
    )
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--duration-min", type=float, default=DEFAULT_DURATION_MIN)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)
    report = run_sweep(
        pool_mb=tuple(args.pool_mb),
        nodes=args.nodes,
        duration_min=args.duration_min,
        seed=args.seed,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("template_sharing", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_template_sharing_smoke():
    """Reduced sweep: templates must beat dedup-only at every point.

    Both halves of the acceptance claim, at every ladder point: fewer
    cold starts AND fewer start-path bytes moved per request.
    """
    report = run_sweep(duration_min=6.0)
    for point in report["results"]:
        assert point["cold_start_delta"] < 0, point
        assert point["bytes_per_start_delta"] < 0, point
        on = point["on"]
        assert on["template_starts"] > 0, point
        assert on["template_segments_shared"] > 0, point


if __name__ == "__main__":
    main()
