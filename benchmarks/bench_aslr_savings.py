"""ASLR's effect on dedup savings (paper Section 7.2.1, insights note).

The paper reports average per-sandbox savings dropping from 28.8 MB to
12.1 MB when ASLR is enabled at fingerprint cardinality 5, and argues
that increasing the cardinality recovers the savings.  This bench
measures per-sandbox savings across (ASLR, cardinality) and checks both
directions.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.study import measure_function_savings
from repro.analysis.tables import render_table
from repro.memory.fingerprint import FingerprintConfig
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def aslr_grid():
    suite = FunctionBenchSuite.default()
    grid: dict[tuple[bool, int], float] = {}
    for aslr in (False, True):
        for cardinality in (5, 20):
            savings = measure_function_savings(
                suite,
                content_scale=SCALE,
                aslr=aslr,
                fingerprint=FingerprintConfig(cardinality=cardinality),
            )
            mean_mb = sum(m.saved_mb for m in savings.values()) / len(savings)
            grid[(aslr, cardinality)] = mean_mb
    rows = [
        (
            "ASLR off" if not aslr else "ASLR on",
            cardinality,
            f"{grid[(aslr, cardinality)]:.1f}",
        )
        for aslr in (False, True)
        for cardinality in (5, 20)
    ]
    text = render_table(
        ["setting", "cardinality", "mean saved MB/sandbox"],
        rows,
        title="ASLR vs dedup savings (Sec 7.2.1 note)",
    )
    write_result("aslr_savings", text)
    return suite, grid


def test_aslr_reduces_savings_and_cardinality_recovers(benchmark, aslr_grid):
    suite, grid = aslr_grid

    # ASLR reduces savings at the default cardinality.  The paper's
    # 28.8 -> 12.1 MB drop cannot be jointly reproduced with its own
    # ~5% Figure-1b redundancy drop under a pointer-divergence model
    # (see EXPERIMENTS.md); we calibrate to the redundancy side and get
    # a smaller but consistent savings drop here.
    assert grid[(True, 5)] < grid[(False, 5)] * 0.99

    # Increasing the fingerprint cardinality recovers the loss (the
    # paper's stated remedy).
    assert grid[(True, 20)] >= grid[(True, 5)] + 0.5
    assert grid[(True, 20)] >= grid[(False, 5)] * 0.98

    benchmark(
        measure_function_savings,
        FunctionBenchSuite.subset(["Vanilla"]),
        content_scale=SCALE,
        aslr=True,
    )
