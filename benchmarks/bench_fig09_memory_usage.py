"""Figure 9 + Section 7.3.1: cluster memory usage under the P2 policy.

Medes runs with memory as the objective; the paper reports lower memory
than fixed keep-alive at the same latency targets, the adaptive policy
cheapest but with >=50% more cold starts, and a majority of deduped
pages matching a *different* function.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig9


@pytest.fixture(scope="module")
def fig9():
    result = run_fig9()
    write_result("fig09_memory_usage", result.render())
    return result


def test_fig9_memory_and_cold_start_shape(benchmark, fig9):
    comparison = fig9.comparison
    table = dict(
        (name, mean) for name, mean, _median in comparison.memory_table()
    )
    medes_name = comparison.medes_name()

    # Medes uses less memory than the fixed keep-alive baseline.
    assert table[medes_name] < table["fixed-ka-10min"]

    # The adaptive baseline's short windows cost it many more cold
    # starts than Medes (the paper reports at least ~50% more).
    medes_cold = comparison.metrics(medes_name).cold_starts()
    adaptive_cold = comparison.metrics("adaptive-ka").cold_starts()
    assert adaptive_cold > medes_cold

    # Section 7.3.1: cross-function dedup carries a large share of the
    # savings (the paper reports ~67% of deduped pages).
    assert fig9.cross_function_share > 0.3

    benchmark(comparison.memory_table)


def test_fig9_latency_targets_respected(benchmark, fig9):
    comparison = fig9.comparison
    medes = comparison.metrics(comparison.medes_name())
    fixed = comparison.metrics("fixed-ka-10min")
    # While saving memory, Medes does not blow up the tail.
    assert medes.e2e_percentile(99.9) <= fixed.e2e_percentile(99.9) * 1.3
    benchmark(medes.mean_memory_bytes)
