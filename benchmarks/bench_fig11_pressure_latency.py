"""Figure 11: end-to-end tail latencies under memory pressure.

Per-function 99.9p latencies at the 30G- and 20G-equivalent pools; the
paper reports up to 3.8x tail improvements for Medes under pressure,
with memory-heavy functions benefiting most.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.analysis.tables import render_table


@pytest.fixture(scope="module")
def fig11(pressure_sweep):
    result = pressure_sweep
    rows = []
    for label in result.pool_labels[1:]:
        comparison = result.comparisons[label]
        rows.extend(
            (
                label,
                name,
                f"{comparison.metrics(name).e2e_percentile(99.9):.0f}",
                f"{comparison.metrics(name).e2e_percentile(99):.0f}",
            )
            for name in comparison.names
        )
    text = render_table(
        ["pool", "platform", "99.9p e2e (ms)", "99p e2e (ms)"],
        rows,
        title="Fig 11: tail latencies under memory pressure",
    )
    write_result("fig11_pressure_latency", text)
    return result


def test_fig11_tail_improvements_under_pressure(benchmark, fig11):
    tight = fig11.pool_labels[-1]
    comparison = fig11.comparisons[tight]
    medes_name = comparison.medes_name()
    functions = comparison.trace.functions()

    medes = comparison.metrics(medes_name)
    fixed = comparison.metrics("fixed-ka-10min")

    # Per-function: Medes wins the tail for a clear majority of
    # functions and never loses catastrophically.
    wins = 0
    comparable = 0
    for function in functions:
        medes_tail = medes.e2e_percentile(99.9, function)
        fixed_tail = fixed.e2e_percentile(99.9, function)
        if np.isnan(medes_tail) or np.isnan(fixed_tail):
            continue
        comparable += 1
        if medes_tail <= fixed_tail:
            wins += 1
        assert medes_tail < fixed_tail * 5.0, function
    assert wins >= int(comparable * 0.4)

    # Cluster-wide tail stays close to the fixed baseline even at the
    # tightest pool (Medes' pinned base checkpoints cost a little queue
    # time for the largest functions at extreme pressure; see
    # EXPERIMENTS.md), while per-function tails mostly improve.
    assert medes.e2e_percentile(99.9) < fixed.e2e_percentile(99.9) * 1.15

    benchmark(medes.e2e_percentile, 99.9)
