"""Figure 7 + Section 7.2.1: end-to-end latency improvements.

Replays the full 10-environment workload against Medes and both
keep-alive baselines under the paper's oversubscribed per-node memory
limit (P1 latency objective), and reports the per-request improvement
CDFs, per-function cold starts, and 99.9p latencies.

The benchmark measures the controller-side request dispatch fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig7
from repro.platform.metrics import StartType


@pytest.fixture(scope="module")
def fig7():
    result = run_fig7()
    write_result("fig07_e2e_latency", result.render())
    return result


def test_fig7_medes_beats_baselines(benchmark, fig7):
    comparison = fig7.comparison
    medes = comparison.metrics(comparison.medes_name())
    fixed = comparison.metrics("fixed-ka-10min")
    adaptive = comparison.metrics("adaptive-ka")

    # Headline: Medes reduces cold starts against both baselines
    # (the paper reports 10-50%).
    assert medes.cold_starts() < fixed.cold_starts()
    assert medes.cold_starts() < adaptive.cold_starts()
    reduction_fixed = 1 - medes.cold_starts() / fixed.cold_starts()
    assert reduction_fixed > 0.05

    # Dedup starts exist and the improvement CDF has a favourable tail
    # (the paper reports up to 2.25-2.75x at the tail).
    assert medes.start_counts()[StartType.DEDUP] > 0
    assert np.percentile(fig7.improvement_vs_fixed, 99) > 1.5
    assert np.percentile(fig7.improvement_vs_adaptive, 99) > 1.5
    # Most requests are unaffected (median ~1x), as in Fig 7a.
    assert 0.8 < np.median(fig7.improvement_vs_fixed) < 1.3

    # Section 7.2.1: Medes deduplicates a material share of sandboxes
    # and keeps more sandboxes in memory than the baselines.
    assert medes.dedup_share() > 0.05
    assert comparison.extra_sandboxes_vs("adaptive-ka") > 0

    # Benchmark: paired improvement-factor computation (the Fig 7a math).
    factors = benchmark(comparison.improvement_over, "fixed-ka-10min")
    assert len(factors) == len(medes.requests)


def test_fig7_tail_latency_improvement(benchmark, fig7):
    comparison = fig7.comparison
    medes = comparison.metrics(comparison.medes_name())
    fixed = comparison.metrics("fixed-ka-10min")

    # Cluster-wide 99.9p: Medes at least matches the fixed baseline.
    assert medes.e2e_percentile(99.9) <= fixed.e2e_percentile(99.9) * 1.1

    result = benchmark(medes.e2e_percentile, 99.9)
    assert result > 0
