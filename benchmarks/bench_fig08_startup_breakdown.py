"""Figure 8: dedup start-time breakdown vs cold starts.

Per function: the three restore phases (base page reading, original
page computing, sandbox restoration) against the cold-start cost.  The
benchmark measures a complete restore op on real content.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig8
from repro.analysis.study import per_function_microbench
from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def fig8():
    result = run_fig8(content_scale=SCALE)
    write_result("fig08_startup_breakdown", result.render())
    return result


def test_fig8_dedup_starts_beat_cold_starts(benchmark, fig8):
    for function, cold, read, compute, fixed, dedup_total in fig8.rows:
        restore_total = read + compute + fixed
        # Dedup starts are consistently much faster than cold starts.
        assert restore_total < 0.5 * cold, function
        # And the background dedup op is in the paper's seconds band.
        assert 500 < dedup_total < 6_000, function

    # Larger functions need more base pages: RNNModel restores slowest.
    by_function = {fn: read + compute + fixed for fn, _, read, compute, fixed, _ in fig8.rows}
    assert by_function["RNNModel"] == max(by_function.values())

    # Benchmark: a full restore op (content + cost model) for LinAlg.
    suite = FunctionBenchSuite.default()
    profile = suite.get("LinAlg")
    store = CheckpointStore()
    registry = FingerprintRegistry()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=SCALE,
    )
    base_image = profile.synthesize(11, content_scale=SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function="LinAlg",
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=12, created_at=0.0)
    sandbox.image = profile.synthesize(12, content_scale=SCALE, executed=True)
    table = agent.dedup(sandbox).table

    outcome = benchmark(agent.restore, table)
    assert outcome.image.checksum() == table.original_checksum
