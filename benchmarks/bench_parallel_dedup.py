"""Scaling curve of the parallel dedup data plane (workers × profiles).

For each (profile, workers) cell this benchmark runs the dedup op twice
on byte-identical sandbox images — once through the serial pipeline,
once through the parallel data plane (`src/repro/parallel/`) — and
records two families of numbers into ``BENCH_parallel_dedup.json``:

* ``wall_*`` — measured wall-clock pages/sec of the *scaled* content
  work, paired min-of-reps like ``bench_dedup_throughput``.  These are
  honest about the machine: on a single-core box (CI runners, this
  container — see the ``cpus`` field) forked workers cannot beat the
  serial path in wall-clock, they only pay IPC overhead.
* ``model_*`` — the overlap cost model's full-scale data-plane time
  for the same ops (``DedupTimings`` with stage-overlap accounting vs
  the serial stage sum, checkpoint prologue excluded from both since
  this PR does not parallelize the runtime freeze).  This is what the
  simulator charges and what Medes' offloaded hashing + batched
  registry traffic (Section 4.3) actually buys: the registry round-trip
  collapses from one RPC per page to one per batch, and the fingerprint
  / patch stages divide across workers while lookups and base reads
  pipeline behind them.

Every paired run also verifies the parallel page table is bit-identical
to the serial one, so the speedups are measured over equivalent work.

Run standalone for the full matrix::

    PYTHONPATH=src python benchmarks/bench_parallel_dedup.py

``--smoke`` runs the reduced CI configuration (also exercised by the
pytest smoke test below).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import statistics
import time

from benchmarks.conftest import write_result
from repro.analysis.tables import render_table
from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import FingerprintConfig, image_fingerprints
from repro.parallel import ParallelConfig
from repro.parallel.pool import WorkerPool
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.workload.functionbench import FunctionBenchSuite

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_parallel_dedup.json"

DEFAULT_PROFILES = ("Vanilla", "LinAlg", "ImagePro")
DEFAULT_WORKERS = (1, 2, 4, 8)
DEFAULT_SCALE_DENOM = 16
DEFAULT_OPS = 3
DEFAULT_REPS = 3
#: Execution/model batch size: small enough that even scaled images
#: split into several batches, so the pipeline actually pipelines.
BATCH_PAGES = 64


def _make_agents(
    profile, profile_name: str, scale: float, parallel: ParallelConfig
) -> tuple[DedupAgent, DedupAgent]:
    """A (parallel, serial) agent pair over one shared store/registry.

    Sharing the store matters for the identity check: page-table entries
    embed checkpoint ids, which are only comparable when both agents
    dedup against the same base checkpoints.
    """
    cfg = FingerprintConfig()
    store = CheckpointStore()
    registry = FingerprintRegistry(cfg)
    fabric = RdmaFabric()

    def make(par: ParallelConfig | None) -> DedupAgent:
        return DedupAgent(
            0,
            registry=registry,
            store=store,
            fabric=fabric,
            costs=CostModel(),
            content_scale=scale,
            fingerprint_config=cfg,
            parallel=par,
            overlap_costs=par,
        )

    base_image = profile.synthesize(100, content_scale=scale, executed=True)
    checkpoint = BaseCheckpoint(
        function=profile_name,
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
    )
    store.add(checkpoint)
    for index, fp in enumerate(image_fingerprints(base_image, cfg)):
        registry.register_page(PageRef(checkpoint.checkpoint_id, 1, index), fp)
    return make(parallel), make(None)


def _stdev(samples: list[float]) -> float:
    return statistics.stdev(samples) if len(samples) > 1 else 0.0


def run_config(
    suite,
    profile_name: str,
    *,
    workers: int,
    scale: float,
    ops: int,
    reps: int,
) -> dict:
    """Paired parallel-vs-serial timing of ``ops`` dedup ops."""
    profile = suite.get(profile_name)
    parallel = ParallelConfig(workers=workers, batch_pages=BATCH_PAGES)

    def make_sandbox(seed: int) -> Sandbox:
        sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
        sandbox.image = profile.synthesize(
            seed, content_scale=scale, aslr=False, executed=True
        )
        sandbox.image.checksum()  # exclude the (cached) checkpoint digest
        return sandbox

    agent_par, agent_ser = _make_agents(profile, profile_name, scale, parallel)
    for k in range(2):  # warm pools, caches and allocator
        agent_par.dedup(make_sandbox(200 + k))
        agent_ser.dedup(make_sandbox(200 + k))

    total_par = total_ser = 0.0
    pages = full_pages = 0
    model_par_ms = model_ser_ms = 0.0
    par_samples: list[float] = []  # wall pages/s, one per (op, rep)
    ser_samples: list[float] = []
    tables_identical = True
    for k in range(ops):
        best_par = best_ser = math.inf
        outcome_par = outcome_ser = None
        for _ in range(reps):
            s_par, s_ser = make_sandbox(300 + k), make_sandbox(300 + k)
            op_pages = s_par.image.num_pages
            t0 = time.perf_counter()
            outcome_par = agent_par.dedup(s_par)
            dt = time.perf_counter() - t0
            best_par = min(best_par, dt)
            par_samples.append(op_pages / dt)
            t0 = time.perf_counter()
            outcome_ser = agent_ser.dedup(s_ser)
            dt = time.perf_counter() - t0
            best_ser = min(best_ser, dt)
            ser_samples.append(op_pages / dt)
        tables_identical = tables_identical and (
            outcome_par.table.entries == outcome_ser.table.entries
            and outcome_par.table.stats == outcome_ser.table.stats
        )
        pages += len(outcome_par.table.entries)
        full_pages += agent_par._full_pages(len(outcome_par.table.entries))
        total_par += best_par
        total_ser += best_ser
        # Modeled full-scale data-plane time of this op (checkpoint
        # freeze excluded from both sides: it is serial either way).
        t_par, t_ser = outcome_par.timings, outcome_ser.timings
        model_par_ms += t_par.total_ms - t_par.checkpoint_ms
        model_ser_ms += t_ser.total_ms - t_ser.checkpoint_ms
    agent_par.close()
    return {
        "profile": profile_name,
        "workers": workers,
        "pages": pages,
        "tables_identical": tables_identical,
        "wall_parallel_pages_per_s": round(pages / total_par, 1),
        "wall_serial_pages_per_s": round(pages / total_ser, 1),
        "wall_speedup": round(total_ser / total_par, 3),
        "wall_parallel_pages_per_s_median": round(statistics.median(par_samples), 1),
        "wall_parallel_pages_per_s_stdev": round(_stdev(par_samples), 1),
        "wall_serial_pages_per_s_median": round(statistics.median(ser_samples), 1),
        "wall_serial_pages_per_s_stdev": round(_stdev(ser_samples), 1),
        "model_parallel_dataplane_ms": round(model_par_ms, 2),
        "model_serial_dataplane_ms": round(model_ser_ms, 2),
        "model_parallel_pages_per_s": round(full_pages / (model_par_ms / 1e3), 1),
        "model_serial_pages_per_s": round(full_pages / (model_ser_ms / 1e3), 1),
        "model_speedup": round(model_ser_ms / model_par_ms, 3),
    }


def run_matrix(
    profiles=DEFAULT_PROFILES,
    workers=DEFAULT_WORKERS,
    scale_denom: int = DEFAULT_SCALE_DENOM,
    ops: int = DEFAULT_OPS,
    reps: int = DEFAULT_REPS,
) -> dict:
    suite = FunctionBenchSuite.default()
    scale = 1.0 / scale_denom
    results = [
        run_config(suite, name, workers=w, scale=scale, ops=ops, reps=reps)
        for name in profiles
        for w in workers
    ]
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    headline = [r for r in results if r["workers"] == 4] or results
    return {
        "benchmark": "parallel_dedup",
        "units": "pages/sec of the dedup op; wall_* = measured scaled "
        "content work (paired min-of-reps), model_* = overlap cost model's "
        "full-scale data-plane time (checkpoint freeze excluded)",
        "headline": "model_speedup: the stage-overlap model vs the serial "
        "stage-sum — what the parallel data plane buys a deployment with "
        "the cores to run it; wall_* shows what this box (see cpus) "
        "actually measured",
        "config": {
            "content_scale": f"1/{scale_denom}",
            "batch_pages": BATCH_PAGES,
            "ops_per_config": ops,
            "reps_per_op": reps,
            "cpus": cpus,
            "python": platform.python_version(),
        },
        "results": results,
        "summary": {
            "model_speedup_at_workers4": {
                r["profile"]: r["model_speedup"] for r in headline
            },
            "all_tables_identical": all(r["tables_identical"] for r in results),
        },
    }


def _render(report: dict) -> str:
    rows = [
        [
            r["profile"],
            str(r["workers"]),
            f"{r['wall_parallel_pages_per_s']:,.0f}",
            f"{r['wall_speedup']:.2f}x",
            f"{r['model_parallel_pages_per_s']:,.0f}",
            f"{r['model_speedup']:.2f}x",
            "yes" if r["tables_identical"] else "NO",
        ]
        for r in report["results"]
    ]
    return render_table(
        ["function", "workers", "wall p/s", "wall x", "model p/s", "model x", "identical"],
        rows,
        title=f"Parallel dedup data plane ({report['config']['cpus']} cpu(s); "
        "model = overlap cost model, full-scale)",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profiles", default=",".join(DEFAULT_PROFILES))
    parser.add_argument("--workers", default=",".join(map(str, DEFAULT_WORKERS)))
    parser.add_argument("--scale-denom", type=int, default=DEFAULT_SCALE_DENOM)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    parser.add_argument(
        "--smoke", action="store_true", help="reduced CI configuration"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_matrix(
            profiles=("Vanilla", "LinAlg"),
            workers=(1, 4),
            scale_denom=64,
            ops=2,
            reps=2,
        )
    else:
        report = run_matrix(
            profiles=tuple(args.profiles.split(",")),
            workers=tuple(int(x) for x in args.workers.split(",")),
            scale_denom=args.scale_denom,
            ops=args.ops,
            reps=args.reps,
        )
    WorkerPool.shutdown_all()
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("parallel_dedup", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_parallel_dedup_smoke():
    """Reduced matrix: tables bit-identical, modeled win at 4 workers."""
    report = run_matrix(
        profiles=("Vanilla", "LinAlg"), workers=(1, 4), scale_denom=64, ops=2, reps=2
    )
    WorkerPool.shutdown_all()
    assert report["summary"]["all_tables_identical"]
    at4 = [r for r in report["results"] if r["workers"] == 4]
    assert len(at4) >= 2
    for r in at4:
        # The acceptance bar: >=2.5x modeled data-plane pages/s on at
        # least two profiles (here: on every profile in the matrix).
        assert r["model_speedup"] >= 2.5, r
    for r in report["results"]:
        assert r["wall_parallel_pages_per_s"] > 0
        assert r["model_parallel_pages_per_s"] > r["model_serial_pages_per_s"]


if __name__ == "__main__":
    main()
