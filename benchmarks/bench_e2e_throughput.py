"""End-to-end simulation throughput: indexed vs scan control plane.

The PR this benchmark lands with replaces every recomputed piece of
cluster state with incrementally maintained indexes: node memory is a
counter instead of a per-resident sum, dispatch candidates live in
per-function sets instead of being re-filtered per request, population
counts are maintained instead of re-counted, placement reads an
already-sorted node order, and the drain/starvation machinery stops
rescanning requests and flooding the event heap.  Per-request
control-plane work drops from O(sandbox population) to O(1).

This benchmark proves the win end to end: it replays the *same* dense
Azure-style trace on Medes and both keep-alive baselines with
``ClusterConfig.indexed_control_plane`` off (the pre-change scan paths,
kept selectable exactly for this measurement) and on, and reports
simulated-requests/sec and simulator-events/sec for each.  The
equivalence suite (``tests/platform/test_control_plane_equivalence.py``)
pins both modes to bit-identical ``RunMetrics``, so the wall-clock delta
is purely control-plane bookkeeping.

The trace is sized to be control-plane-bound: many replicated functions
on an oversubscribed multi-node cluster, so the resident population is
large (hundreds of sandboxes) while per-request work stays small.
Results go to ``BENCH_e2e_throughput.json`` at the repo root.

Run standalone for the full matrix::

    PYTHONPATH=src python -m benchmarks.bench_e2e_throughput

or via pytest for a reduced smoke configuration.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import pathlib
import platform as platform_module
import time

from benchmarks.conftest import write_result

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.analysis.tables import render_table
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_e2e_throughput.json"

KINDS = (
    PlatformKind.MEDES,
    PlatformKind.FIXED_KEEP_ALIVE,
    PlatformKind.ADAPTIVE_KEEP_ALIVE,
)

DEFAULT_NODES = 8
DEFAULT_NODE_MB = 1024.0
DEFAULT_COPIES = 4
DEFAULT_DURATION_MIN = 8.0
DEFAULT_RATE_SCALE = 10.0
DEFAULT_REPS = 2
SCALE = 1.0 / 256.0

MEDES = MedesPolicyConfig(idle_period_ms=30_000.0, alpha=25.0)


def make_workload(copies: int, duration_min: float, rate_scale: float, seed: int):
    """A dense multi-function trace over a large replicated suite."""
    suite = FunctionBenchSuite.replicated(FunctionBenchSuite.default().names(), copies)
    trace = AzureTraceGenerator(seed=seed, rate_scale=rate_scale).generate(
        duration_min, suite.names()
    )
    return suite, trace


def run_once(kind, config, suite, trace) -> dict:
    """One timed platform run; returns wall time and simulator counters."""
    # Reset the process-global id counters so paired runs mint identical
    # ids and therefore replay identical event sequences.
    sandbox_module._sandbox_ids = itertools.count(1)
    checkpoint_module._checkpoint_ids = itertools.count(1)
    kwargs = {"medes": MEDES} if kind is PlatformKind.MEDES else {}
    platform = build_platform(kind, config, suite, **kwargs)
    t0 = time.perf_counter()
    report = platform.run(trace)
    wall_s = time.perf_counter() - t0
    return {
        "wall_s": wall_s,
        "events": platform.sim.events_processed,
        "requests": len(report.metrics.requests),
        "completed": len(report.metrics.completed_records()),
        "sandboxes_created": report.metrics.sandboxes_created,
        "evictions": report.metrics.evictions,
    }


def run_pair(kind, config, suite, trace, reps: int) -> dict:
    """Paired scan-vs-indexed timing (min over ``reps``) for one platform."""
    from dataclasses import replace

    best: dict[bool, dict] = {}
    for _ in range(reps):
        for indexed in (False, True):
            cfg = replace(config, indexed_control_plane=indexed)
            sample = run_once(kind, cfg, suite, trace)
            prior = best.get(indexed)
            if prior is None or sample["wall_s"] < prior["wall_s"]:
                best[indexed] = sample
    scan, indexed = best[False], best[True]
    assert scan["requests"] == indexed["requests"]
    assert scan["events"] == indexed["events"], "paired runs diverged"
    return {
        "platform": kind.value,
        "requests": scan["requests"],
        "events": scan["events"],
        "sandboxes_created": indexed["sandboxes_created"],
        "evictions": indexed["evictions"],
        "scan_wall_s": round(scan["wall_s"], 3),
        "indexed_wall_s": round(indexed["wall_s"], 3),
        "scan_req_per_s": round(scan["requests"] / scan["wall_s"], 1),
        "indexed_req_per_s": round(indexed["requests"] / indexed["wall_s"], 1),
        "scan_events_per_s": round(scan["events"] / scan["wall_s"], 1),
        "indexed_events_per_s": round(indexed["events"] / indexed["wall_s"], 1),
        "speedup": round(scan["wall_s"] / indexed["wall_s"], 3),
    }


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def run_matrix(
    nodes: int = DEFAULT_NODES,
    node_mb: float = DEFAULT_NODE_MB,
    copies: int = DEFAULT_COPIES,
    duration_min: float = DEFAULT_DURATION_MIN,
    rate_scale: float = DEFAULT_RATE_SCALE,
    reps: int = DEFAULT_REPS,
    seed: int = 17,
) -> dict:
    suite, trace = make_workload(copies, duration_min, rate_scale, seed)
    config = ClusterConfig(
        nodes=nodes, node_memory_mb=node_mb, content_scale=SCALE, seed=seed
    )
    results = [run_pair(kind, config, suite, trace, reps) for kind in KINDS]
    return {
        "benchmark": "e2e_throughput",
        "units": "simulated requests/sec and simulator events/sec of full platform runs",
        "config": {
            "nodes": nodes,
            "node_memory_mb": node_mb,
            "functions": copies * len(FunctionBenchSuite.default().names()),
            "trace_minutes": duration_min,
            "rate_scale": rate_scale,
            "trace_requests": len(trace),
            "content_scale": "1/256",
            "reps": reps,
            "python": platform_module.python_version(),
        },
        "results": results,
        "summary": {
            "geomean_speedup": round(_geomean([r["speedup"] for r in results]), 3),
            "max_speedup": round(max(r["speedup"] for r in results), 3),
            "min_speedup": round(min(r["speedup"] for r in results), 3),
        },
    }


def _render(report: dict) -> str:
    rows = [
        [
            r["platform"],
            f"{r['requests']:,}",
            f"{r['scan_req_per_s']:,.0f}",
            f"{r['indexed_req_per_s']:,.0f}",
            f"{r['scan_events_per_s']:,.0f}",
            f"{r['indexed_events_per_s']:,.0f}",
            f"{r['speedup']:.2f}x",
        ]
        for r in report["results"]
    ]
    rows.append(
        ["geomean", "", "", "", "", "", f"{report['summary']['geomean_speedup']:.2f}x"]
    )
    return render_table(
        ["platform", "requests", "scan req/s", "indexed req/s",
         "scan ev/s", "indexed ev/s", "speedup"],
        rows,
        title="End-to-end simulation throughput: scan vs indexed control plane",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--node-mb", type=float, default=DEFAULT_NODE_MB)
    parser.add_argument("--copies", type=int, default=DEFAULT_COPIES)
    parser.add_argument("--duration-min", type=float, default=DEFAULT_DURATION_MIN)
    parser.add_argument("--rate-scale", type=float, default=DEFAULT_RATE_SCALE)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    args = parser.parse_args(argv)
    report = run_matrix(
        nodes=args.nodes,
        node_mb=args.node_mb,
        copies=args.copies,
        duration_min=args.duration_min,
        rate_scale=args.rate_scale,
        reps=args.reps,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("e2e_throughput", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_e2e_throughput_smoke():
    """Reduced trace: the indexed control plane must not be slower."""
    report = run_matrix(
        nodes=4, copies=2, duration_min=3.0, rate_scale=6.0, reps=1
    )
    for result in report["results"]:
        assert result["requests"] > 0, result
        assert result["speedup"] > 0.8, result
    assert report["summary"]["geomean_speedup"] > 1.0


if __name__ == "__main__":
    main()
