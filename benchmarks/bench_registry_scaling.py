"""Fingerprint-registry scaling micro-benchmark (paper Section 4.3).

Measures how the fingerprint registry behaves as the cluster grows:
lookup latency versus registry population, shard load balance, and the
single-digest routing property that makes key partitioning safe.

(Moved here from ``bench_scalability.py``, which now holds the
full-platform cluster-scale replay curve.)
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import write_result
from repro.analysis.tables import render_table
from repro.core.registry import FingerprintRegistry, PageRef, ShardedFingerprintRegistry
from repro.memory.fingerprint import page_fingerprint
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


def _populate(registry, base_count: int):
    """Register `base_count` base sandboxes' pages; returns query set."""
    suite = FunctionBenchSuite.default()
    queries = []
    for index in range(base_count):
        profile = suite.profiles[index % len(suite)]
        image = profile.synthesize(
            9_000 + index, content_scale=SCALE, executed=True
        )
        for page_index in range(image.num_pages):
            fingerprint = page_fingerprint(image.page(page_index))
            registry.register_page(
                PageRef(index + 1, index % 8, page_index), fingerprint
            )
            if page_index % 11 == 0 and fingerprint.digests:
                queries.append(fingerprint)
    return queries


@pytest.fixture(scope="module")
def scaling_data():
    rows = []
    measurements = {}
    for base_count in (2, 8, 24):
        registry = FingerprintRegistry()
        queries = _populate(registry, base_count)
        start = time.perf_counter()
        hits = sum(
            1 for q in queries if registry.choose_base_page(q, 0) is not None
        )
        elapsed_us = (time.perf_counter() - start) / max(1, len(queries)) * 1e6
        measurements[base_count] = (elapsed_us, hits / max(1, len(queries)))
        rows.append(
            (
                base_count,
                registry.digest_count,
                f"{registry.memory_bytes() / 1024:.0f}KB",
                f"{elapsed_us:.1f}",
                f"{hits / max(1, len(queries)) * 100:.0f}%",
            )
        )
    text = render_table(
        ["base sandboxes", "digests", "registry size", "lookup us", "hit rate"],
        rows,
        title="Sec 4.3: registry scaling with base-sandbox population",
    )
    write_result("scalability_registry", text)
    return measurements


def test_registry_lookup_stays_flat(benchmark, scaling_data):
    """Hash-table lookups stay near-constant as the registry grows —
    the property that lets the paper claim per-page lookups scale."""
    small_us, _ = scaling_data[2]
    large_us, large_hit_rate = scaling_data[24]
    # 12x more bases must not make lookups an order of magnitude slower.
    assert large_us < max(small_us, 5.0) * 8
    assert large_hit_rate > 0.9

    registry = FingerprintRegistry()
    queries = _populate(registry, 4)

    def lookup_all():
        return sum(1 for q in queries if registry.choose_base_page(q, 0) is not None)

    hits = benchmark(lookup_all)
    assert hits > 0


def test_sharding_divides_load(benchmark):
    """Shards see roughly even digest load (key partitioning works)."""
    sharded = ShardedFingerprintRegistry(8)
    _populate(sharded, 8)
    assert sharded.load_imbalance() < 1.25
    per_shard = [shard.digest_count for shard in sharded.shards]
    assert min(per_shard) > 0

    benchmark(sharded.load_imbalance)
