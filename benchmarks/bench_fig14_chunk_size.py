"""Figure 14: sensitivity to the RSC chunk size (32/64/128 B).

64 B is the paper's sweet spot: 32 B chunks collide in the fingerprint
table (dissimilar chunks labelled similar -> worse base pages -> larger
patches), 128 B chunks identify less redundancy.  The benchmark measures
page fingerprinting at the default chunk size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig14
from repro.memory.fingerprint import FingerprintConfig, page_fingerprint
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def fig14():
    result = run_fig14()
    write_result("fig14_chunk_size", result.render())
    return result


def test_fig14_64b_is_the_sweet_spot(benchmark, fig14):
    cold = fig14.cold_starts
    # 32B chunks suffer fingerprint-table collisions (modelled via
    # digest truncation), which shows as lower per-sandbox savings —
    # the paper's stated mechanism (patch size 611B -> 940B).
    assert fig14.metrics["32B"] < fig14.metrics["64B"]
    # Cold-start counts stay within a noise band around the 64B setting
    # (the paper's U-shape on counts needs sub-page-shifted redundancy
    # that page-aligned synthetic content exhibits only weakly; see
    # EXPERIMENTS.md).
    assert cold["64B"] <= cold["32B"] * 1.10
    assert cold["64B"] <= cold["128B"] * 1.10

    # Benchmark: value-sampled fingerprinting of one page.
    profile = FunctionBenchSuite.default().get("LinAlg")
    image = profile.synthesize(77, content_scale=SCALE, executed=True)
    page = image.page(3)
    fingerprint = benchmark(page_fingerprint, page, FingerprintConfig())
    assert len(fingerprint.digests) <= 5
