"""Figure 16: sensitivity to the fingerprint set cardinality (5/10/20).

More sampled chunks per page mean better base pages and more memory
saved per sandbox, but more distinct base pages to read at restore time
— the paper measures restores of 378/478/554 ms and inflated tails at
cardinality 20.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig16
from repro.memory.fingerprint import FingerprintConfig, page_fingerprint
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def fig16():
    result = run_fig16()
    write_result("fig16_cardinality", result.render())
    return result


def test_fig16_cardinality_tradeoff(benchmark, fig16):
    # Higher cardinality saves more memory per sandbox...
    assert fig16.savings_mb["20"] >= fig16.savings_mb["5"] * 0.95
    # ...and never makes restores faster.
    assert fig16.restore_ms["20"] >= fig16.restore_ms["5"] * 0.95
    # Cardinality 5 remains competitive on cold starts (the paper's
    # chosen default).
    assert fig16.cold_starts["5"] <= min(fig16.cold_starts.values()) * 1.3

    # Benchmark: fingerprinting at cardinality 20 (the expensive end).
    profile = FunctionBenchSuite.default().get("FeatureGen")
    image = profile.synthesize(42, content_scale=SCALE, executed=True)
    config = FingerprintConfig(cardinality=20)
    fingerprint = benchmark(page_fingerprint, image.page(5), config)
    assert len(fingerprint.digests) <= 20
