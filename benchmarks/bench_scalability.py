"""Cluster-scale trace replay: the full-platform scaling curve.

Replays Azure-style cluster traces — :class:`ClusterTraceGenerator`'s
Zipf popularity over hundreds of functions with a steady/bursty mix
under a shared diurnal envelope — against the complete Medes platform
(controller, policy, dedup data plane, registry, nodes) at growing
cluster sizes.  The default curve runs 8, 32 and 128 nodes with the
request budget proportional to nodes, so the top point replays over a
million requests, and reports per point:

* **requests/s** — completed requests per wall-clock second,
* **events/s** — simulator callbacks dispatched per wall-clock second,
* **peak RSS** — the point's own high-water resident set.

Each point runs in its own subprocess (``--single``) so peak RSS is an
honest per-configuration measurement rather than the maximum across the
whole sweep, and so points never share interned state.  The parent
aggregates the per-point JSON into ``BENCH_scalability.json`` at the
repo root plus a rendered table under ``benchmarks/results/``.

Run the full curve (minutes; the 128-node point alone replays ~1M
requests)::

    PYTHONPATH=src python benchmarks/bench_scalability.py

or the CI-sized smoke curve (seconds)::

    PYTHONPATH=src python benchmarks/bench_scalability.py --smoke

The registry-population micro-benchmark that used to live here moved to
``benchmarks/bench_registry_scaling.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import subprocess
import sys
import time

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if __package__ in (None, ""):  # script mode: `python benchmarks/bench_scalability.py`
    sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.conftest import write_result
from repro.analysis.tables import render_table
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform
from repro.workload.azure import ClusterTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite

REPO_ROOT = _REPO_ROOT
REPORT_PATH = REPO_ROOT / "BENCH_scalability.json"

#: Cluster sizes of the curve; the paper's testbed is 19 nodes, the
#: point of this benchmark is the decade above it.
NODE_POINTS = (8, 32, 128)
#: Request budget per node — 8192 x 128 nodes puts the top point past a
#: million requests even after ~1% generation shortfall.
REQUESTS_PER_NODE = 8192
#: Simulated span of every point; load density grows with the cluster.
DURATION_MIN = 60.0
#: Replicas per FunctionBench profile: 20 x 10 profiles = 200 distinct
#: functions for the Zipf popularity ranking to spread across.
COPIES = 20

#: Per-node memory and content scale are sized so the replay exercises
#: the event loop and control plane rather than degenerating into
#: permanent eviction thrash (which measures the eviction scan, not
#: scaling).  3 GB nodes stay busy but not wedged at this load.
NODE_MEMORY_MB = 3072.0
CONTENT_SCALE = 1.0 / 1024.0

SMOKE_NODE_POINTS = (2, 4)
SMOKE_REQUESTS_PER_NODE = 250
SMOKE_DURATION_MIN = 6.0
SMOKE_COPIES = 3


def run_point(
    nodes: int,
    target_requests: int,
    *,
    duration_min: float = DURATION_MIN,
    copies: int = COPIES,
    seed: int = 0,
) -> dict:
    """Generate and replay one scaling point in this process."""
    suite = FunctionBenchSuite.replicated(FunctionBenchSuite.default().names(), copies)
    generator = ClusterTraceGenerator(seed=seed)
    gen_start = time.perf_counter()
    trace = generator.generate(
        duration_min, suite.names(), target_requests=target_requests
    )
    gen_s = time.perf_counter() - gen_start

    config = ClusterConfig(
        nodes=nodes,
        node_memory_mb=NODE_MEMORY_MB,
        content_scale=CONTENT_SCALE,
        seed=seed,
    )
    platform = build_platform(PlatformKind.MEDES, config, suite)
    replay_start = time.perf_counter()
    report = platform.run(trace)
    replay_s = time.perf_counter() - replay_start

    events = platform.sim.events_processed
    completed = sum(report.metrics.start_counts().values())
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "nodes": nodes,
        "functions": len(suite),
        "target_requests": target_requests,
        "requests": len(trace),
        "completed": completed,
        "events": events,
        "gen_s": round(gen_s, 3),
        "replay_s": round(replay_s, 3),
        "req_per_s": round(completed / replay_s, 1),
        "events_per_s": round(events / replay_s, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "pending_events_after": platform.sim.pending_events,
        "p50_e2e_ms": round(report.metrics.e2e_percentile(50), 2),
        "p99_e2e_ms": round(report.metrics.e2e_percentile(99), 2),
    }


def _spawn_point(nodes: int, target_requests: int, args: argparse.Namespace) -> dict:
    """Run one point in a child interpreter; returns its JSON record."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    command = [
        sys.executable,
        str(pathlib.Path(__file__).resolve()),
        "--single",
        "--nodes",
        str(nodes),
        "--requests",
        str(target_requests),
        "--duration-min",
        str(args.duration_min),
        "--copies",
        str(args.copies),
        "--seed",
        str(args.seed),
    ]
    output = subprocess.run(
        command, cwd=REPO_ROOT, env=env, check=True, capture_output=True, text=True
    )
    return json.loads(output.stdout.splitlines()[-1])


def run_curve(args: argparse.Namespace) -> dict:
    """Run every point of the curve in subprocesses and aggregate."""
    points = []
    for nodes in args.node_points:
        target = nodes * args.requests_per_node
        print(f"[bench_scalability] {nodes} nodes, {target} requests ...", flush=True)
        point = _spawn_point(nodes, target, args)
        print(
            f"[bench_scalability]   {point['completed']} completed in "
            f"{point['replay_s']:.1f}s: {point['req_per_s']:.0f} req/s, "
            f"{point['events_per_s']:.0f} events/s, "
            f"{point['peak_rss_mb']:.0f} MB peak RSS",
            flush=True,
        )
        points.append(point)
    return {
        "benchmark": "cluster_scale_replay",
        "platform": "medes",
        "smoke": bool(args.smoke),
        "config": {
            "duration_min": args.duration_min,
            "copies": args.copies,
            "node_memory_mb": NODE_MEMORY_MB,
            "content_scale": CONTENT_SCALE,
            "streamed_arrivals": True,
            "arrival_chunk": ClusterConfig().arrival_chunk,
            "seed": args.seed,
        },
        "points": points,
    }


def write_report(report: dict) -> None:
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    rows = [
        (
            point["nodes"],
            point["requests"],
            point["completed"],
            point["events"],
            f"{point['req_per_s']:.0f}",
            f"{point['events_per_s']:.0f}",
            f"{point['peak_rss_mb']:.0f}",
        )
        for point in report["points"]
    ]
    text = render_table(
        ["nodes", "requests", "completed", "events", "req/s", "events/s", "peak RSS MB"],
        rows,
        title="Cluster-scale trace replay (full Medes platform)",
    )
    write_result("scalability_cluster_replay", text)
    print(text)


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized curve")
    parser.add_argument("--single", action="store_true", help="run one point, print JSON")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--duration-min", type=float, default=None)
    parser.add_argument("--copies", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.node_points = SMOKE_NODE_POINTS
        args.requests_per_node = SMOKE_REQUESTS_PER_NODE
        args.duration_min = args.duration_min or SMOKE_DURATION_MIN
        args.copies = args.copies or SMOKE_COPIES
    else:
        args.node_points = NODE_POINTS
        args.requests_per_node = REQUESTS_PER_NODE
        args.duration_min = args.duration_min or DURATION_MIN
        args.copies = args.copies or COPIES
    return args


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.single:
        if args.nodes is None or args.requests is None:
            raise SystemExit("--single requires --nodes and --requests")
        point = run_point(
            args.nodes,
            args.requests,
            duration_min=args.duration_min,
            copies=args.copies,
            seed=args.seed,
        )
        print(json.dumps(point))
        return 0
    write_report(run_curve(args))
    return 0


# ----------------------------------------------------------- pytest leg


def test_cluster_replay_smoke():
    """One tiny in-process point: the full platform replays a generated
    cluster trace to completion and the reported rates are sane."""
    point = run_point(2, 400, duration_min=5.0, copies=2)
    assert point["completed"] == point["requests"] > 300
    assert point["events"] > point["requests"]
    assert point["req_per_s"] > 0
    assert point["events_per_s"] > point["req_per_s"]
    assert point["peak_rss_mb"] > 0
    # Keep-alive and idle timers legitimately outlive the drained trace.
    assert point["pending_events_after"] >= 0


if __name__ == "__main__":
    raise SystemExit(main())
