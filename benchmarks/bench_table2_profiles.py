"""Table 2: execution time and memory footprint of the FunctionBench suite.

The profiles *are* the paper's inputs; this bench verifies the tabulated
values, reports them, and measures sandbox image synthesis (the cost the
platform pays when a sandbox's content is first materialized).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.tables import render_table
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0

#: The paper's Table 2 rows: (exec ms, memory MB).
PAPER_TABLE2 = {
    "Vanilla": (150, 17.0),
    "LinAlg": (250, 32.0),
    "ImagePro": (1200, 26.4),
    "VideoPro": (2000, 48.0),
    "MapReduce": (500, 32.0),
    "HTMLServe": (400, 22.3),
    "AuthEnc": (400, 22.3),
    "FeatureGen": (1000, 66.0),
    "RNNModel": (1000, 90.0),
    "ModelTrain": (3000, 87.5),
}


@pytest.fixture(scope="module")
def table2():
    suite = FunctionBenchSuite.default()
    rows = [
        (p.name, p.description, f"{p.exec_time_ms:.0f}", f"{p.memory_mb:g}MB",
         f"{p.cold_start_ms:.0f}")
        for p in suite
    ]
    text = render_table(
        ["function", "environment", "exec (ms)", "memory", "cold start (ms)"],
        rows,
        title="Table 2: FunctionBench profiles",
    )
    write_result("table2_profiles", text)
    return suite


def test_table2_profiles(benchmark, table2):
    suite = table2
    for name, (exec_ms, memory_mb) in PAPER_TABLE2.items():
        profile = suite.get(name)
        assert profile.exec_time_ms == exec_ms
        assert profile.memory_mb == memory_mb

    profile = suite.get("RNNModel")
    image = benchmark(profile.synthesize, 1234, content_scale=SCALE, executed=True)
    assert image.num_pages > 0
