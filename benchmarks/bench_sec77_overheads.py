"""Section 7.7: overheads at the dedup agent and the controller.

Reports per-function dedup-op durations (the paper: 2 s for Vanilla to
3.3 s for ModelTrain, lookups 130-1850 ms at ~80 us/page), the
fingerprint-registry footprint, and the dedup agent's metadata share of
node memory (the paper: below 10%).  Benchmarks the registry lookup
itself — the controller's hot operation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_overheads
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def overheads():
    result = run_overheads()
    write_result("sec77_overheads", result.render())
    return result


def test_sec77_dedup_op_durations(benchmark, overheads):
    durations = overheads.dedup_duration_ms
    # The paper's band: ~1-4 s per dedup op, ordered by footprint.
    for function, duration in durations.items():
        assert 500 < duration < 6_000, function
    assert durations["ModelTrain"] > durations["Vanilla"]
    # Lookup dominates proportionally to pages (~80 us/page in the cost model).
    assert overheads.lookup_ms["ModelTrain"] > overheads.lookup_ms["Vanilla"] * 3

    # Agent metadata + base checkpoints stay a small share of node
    # memory (the paper: <10%; our scaled cluster holds fewer sandboxes
    # per base, so allow some slack).
    assert overheads.agent_metadata_share < 0.20

    benchmark(dict, durations)


def test_sec77_registry_lookup_throughput(benchmark):
    """Registry lookups at ~80 us/page in the paper's single thread;
    this measures our in-memory implementation's raw lookup."""
    registry = FingerprintRegistry()
    suite = FunctionBenchSuite.default()
    fingerprints = []
    for seed, profile in enumerate(suite):
        image = profile.synthesize(500 + seed, content_scale=SCALE, executed=True)
        for index in range(image.num_pages):
            fingerprint = page_fingerprint(image.page(index))
            registry.register_page(PageRef(seed, seed % 4, index), fingerprint)
            if index % 7 == 0:
                fingerprints.append(fingerprint)

    def lookup_batch():
        hits = 0
        for fingerprint in fingerprints:
            if registry.choose_base_page(fingerprint, local_node_id=0) is not None:
                hits += 1
        return hits

    hits = benchmark(lookup_batch)
    assert hits > len(fingerprints) * 0.5
