"""Fig-10 pressure sweep with tiered checkpoint storage on vs off.

The tiered store (DESIGN.md §9) gives the Medes controller somewhere to
put cold state other than the bin: under memory pressure, base
checkpoints demote to the remote-DRAM pool or a node's local SSD instead
of blocking placement, and keep-dedup expiry parks patch tables on SSD
("dedup-cold") instead of purging them.  A recorded-working-set
prefetcher overlaps the batched base-page fetch with patch application
on every repeat restore.

This benchmark replays the paper's Figure-10 pool-size ladder (the
40/30/20 GB points, scaled) on the Medes platform twice per point —
``checkpoint_tiering`` off (the paper's DRAM-only behaviour) and on —
and reports cold starts, dedup starts, demotion/promotion counts, and
the mean restore cost of first-touch vs prefetched restores.  The claim
being measured: at the tight pressure points tiering converts cold
starts into (slightly slower) dedup starts, and recorded restores beat
first-touch restores.

Results go to ``BENCH_storage_tiers.json`` at the repo root.

Run standalone for the full ladder::

    PYTHONPATH=src python -m benchmarks.bench_storage_tiers

or via pytest for a reduced smoke configuration.
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import platform as platform_module

from benchmarks.conftest import write_result

import repro.sandbox.checkpoint as checkpoint_module
import repro.sandbox.sandbox as sandbox_module
from repro.analysis.experiments import full_workload
from repro.analysis.tables import render_table
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_storage_tiers.json"

#: The Figure-10 ladder: the paper's 40/30/20 GB cluster pools, scaled.
DEFAULT_POOL_MB = (3072.0, 2304.0, 1792.0)
DEFAULT_NODES = 2
DEFAULT_DURATION_MIN = 20.0
DEFAULT_SEED = 11

MEDES = MedesPolicyConfig()


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_point(pool_mb: float, nodes: int, duration_min: float, seed: int) -> dict:
    """One pool size, Medes with tiering off and on, same trace."""
    suite, trace = full_workload(duration_min, seed)
    samples = {}
    for tiering in (False, True):
        # Reset the process-global id counters so the paired runs mint
        # identical ids and any delta is attributable to tiering alone.
        sandbox_module._sandbox_ids = itertools.count(1)
        checkpoint_module._checkpoint_ids = itertools.count(1)
        config = ClusterConfig(
            nodes=nodes,
            node_memory_mb=pool_mb / nodes,
            seed=1,
            checkpoint_tiering=tiering,
        )
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=MEDES)
        metrics = platform.run(trace).metrics
        first_touch = [
            op.total_ms - op.promote_ms
            for op in metrics.restore_ops
            if not op.prefetched
        ]
        prefetched = [
            op.total_ms - op.promote_ms
            for op in metrics.restore_ops
            if op.prefetched
        ]
        # The same recorded restores replayed first-touch style: the
        # base read and the patch compute run serially instead of
        # overlapped (promote_ms excluded from both sides — un-parking a
        # table costs the same either way).
        prefetched_serial = [
            op.base_read_ms + op.compute_ms + op.miss_read_ms + op.restore_ms
            for op in metrics.restore_ops
            if op.prefetched
        ]
        samples[tiering] = {
            "requests": len(metrics.requests),
            "cold_starts": metrics.cold_starts(),
            "dedup_starts": len(metrics.restore_ops),
            "evictions": metrics.evictions,
            "table_demotions": metrics.table_demotions,
            "table_promotions": metrics.table_promotions,
            "checkpoint_demotions": metrics.checkpoint_demotions,
            "checkpoint_promotions": metrics.checkpoint_promotions,
            "prefetched_restores": metrics.prefetched_restores,
            "prefetch_hit_pages": metrics.prefetch_hit_pages,
            "prefetch_miss_pages": metrics.prefetch_miss_pages,
            "mean_first_touch_restore_ms": round(_mean(first_touch), 3),
            "mean_prefetched_restore_ms": round(_mean(prefetched), 3),
            "mean_prefetched_serial_ms": round(_mean(prefetched_serial), 3),
        }
    off, on = samples[False], samples[True]
    assert off["requests"] == on["requests"]
    return {
        "pool_mb": pool_mb,
        "requests": off["requests"],
        "off": off,
        "on": on,
        "cold_start_delta": on["cold_starts"] - off["cold_starts"],
    }


def run_sweep(
    pool_mb: tuple[float, ...] = DEFAULT_POOL_MB,
    nodes: int = DEFAULT_NODES,
    duration_min: float = DEFAULT_DURATION_MIN,
    seed: int = DEFAULT_SEED,
) -> dict:
    results = [run_point(pool, nodes, duration_min, seed) for pool in pool_mb]
    return {
        "benchmark": "storage_tiers",
        "units": "cold starts and mean restore ms per Fig-10 pool point",
        "config": {
            "pool_mb": list(pool_mb),
            "nodes": nodes,
            "trace_minutes": duration_min,
            "seed": seed,
            "python": platform_module.python_version(),
        },
        "results": results,
    }


def _render(report: dict) -> str:
    rows = []
    for point in report["results"]:
        off, on = point["off"], point["on"]
        rows.append(
            [
                f"{point['pool_mb']:.0f}MB",
                off["cold_starts"],
                on["cold_starts"],
                on["table_demotions"],
                on["checkpoint_demotions"],
                on["prefetched_restores"],
                f"{on['mean_prefetched_serial_ms']:.1f}",
                f"{on['mean_prefetched_restore_ms']:.1f}",
            ]
        )
    return render_table(
        [
            "pool",
            "cold (off)",
            "cold (tiered)",
            "tbl demote",
            "ckpt demote",
            "prefetched",
            "serial ms",
            "prefetched ms",
        ],
        rows,
        title="Fig 10 pressure sweep: tiered checkpoint storage off vs on",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pool-mb", type=float, nargs="+", default=list(DEFAULT_POOL_MB)
    )
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--duration-min", type=float, default=DEFAULT_DURATION_MIN)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)
    report = run_sweep(
        pool_mb=tuple(args.pool_mb),
        nodes=args.nodes,
        duration_min=args.duration_min,
        seed=args.seed,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("storage_tiers", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_storage_tiers_smoke():
    """Reduced sweep: tiering must help where it matters.

    At the tight pressure points (the 30G/20G analogues) tiering must
    not increase cold starts — parked tables keep serving dedup starts —
    and recorded restores must be faster on average than first-touch.
    """
    report = run_sweep(duration_min=6.0)
    tight = report["results"][1:]  # the 30G and 20G analogues
    assert any(p["cold_start_delta"] < 0 for p in tight), tight
    for point in tight:
        assert point["cold_start_delta"] <= 0, point
        on = point["on"]
        assert on["table_demotions"] > 0, point
        if on["prefetched_restores"]:
            assert (
                on["mean_prefetched_restore_ms"]
                < on["mean_prefetched_serial_ms"]
            ), point


if __name__ == "__main__":
    main()
