"""Figure 13: integrating Medes with optimized checkpoint-restore.

Every cold start is replaced by an emulated Catalyzer template restore;
adding Medes on top still reduces cold starts (by deduplicating warm
state so more sandboxes stay resident), the paper's Section-7.6 point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import run_fig13


@pytest.fixture(scope="module")
def fig13():
    result = run_fig13()
    write_result("fig13_catalyzer", result.render())
    return result


def test_fig13_medes_improves_catalyzer(benchmark, fig13):
    emulated = fig13.cold_starts["Emulated Catalyzer"]
    combined = fig13.cold_starts["Emulated Catalyzer + Medes"]
    assert combined < emulated
    assert 1 - combined / emulated > 0.10

    benchmark(dict, fig13.cold_starts)
