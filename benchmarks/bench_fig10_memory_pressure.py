"""Figure 10: cold starts under memory pressure.

Sweeps the cluster pool size (the paper's 40G/30G/20G, scaled) and
compares cold-start counts; the paper's key claim is that Medes'
advantage *grows* as memory pressure increases.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result


@pytest.fixture(scope="module")
def pressure(pressure_sweep):
    result = pressure_sweep
    write_result("fig10_memory_pressure", result.render())
    return result


def test_fig10_pressure_shape(benchmark, pressure):
    labels = pressure.pool_labels  # largest pool first

    def cold(label, name):
        return pressure.comparisons[label].metrics(name).cold_starts()

    medes_name = pressure.comparisons[labels[0]].medes_name()

    # Medes beats both baselines at every pressure level.
    for label in labels:
        assert cold(label, medes_name) < cold(label, "fixed-ka-10min"), label
        assert cold(label, medes_name) < cold(label, "adaptive-ka"), label

    # Cold starts increase as the pool shrinks, for every platform.
    for name in pressure.comparisons[labels[0]].names:
        series = [cold(label, name) for label in labels]
        assert series[0] <= series[-1], name

    # The paper's headline: Medes' relative improvement over the fixed
    # baseline grows (or at least persists) under pressure (the paper
    # measures 22% -> 37% -> 40.7%).
    gains = [
        1 - cold(label, medes_name) / cold(label, "fixed-ka-10min") for label in labels
    ]
    assert max(gains[1:]) > gains[0]  # pressure amplifies the advantage
    assert min(gains[1:]) > 0.10  # and it stays material throughout

    comparison = pressure.comparisons[labels[-1]]
    benchmark(comparison.cold_start_table)
