"""Ablations of Medes' design choices (DESIGN.md section 4 extensions).

Each ablation toggles one mechanism on the representative workload:

* **value-sampled vs fixed-offset fingerprints** — the paper's Section-8
  argument against Difference Engine's random-offset chunks, measured as
  per-sandbox savings under ASLR (where content shifts);
* **dedup abort** — serving an arriving request by aborting an in-flight
  dedup op instead of paying a cold start;
* **base demarcation threshold** — per-function bases always (threshold
  1.0) vs cross-function coverage first (default 0.45) vs never (0.0);
* **eviction order** — how much baseline quality the keep-alive
  comparison rests on;
* **registry sharding** — Section 4.3: sharding must not change results.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import write_result
from repro.analysis.experiments import representative_config, representative_workload
from repro.analysis.study import measure_function_savings
from repro.analysis.tables import render_table
from repro.memory.fingerprint import FingerprintConfig, SamplingStrategy
from repro.platform.platform import PlatformKind, build_platform
from repro.sandbox.node import EvictionOrder
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


@pytest.fixture(scope="module")
def workload():
    return representative_workload(duration_min=10.0)


def _run_medes(suite, trace, config):
    return build_platform(PlatformKind.MEDES, config, suite).run(trace).metrics


def test_ablation_fingerprint_strategy(benchmark):
    """Value sampling survives sub-page content shifts; fixed offsets
    (Difference Engine's scheme, Section 8) do not.

    Page-aligned content matches equally well under either scheme, so
    the discriminating case is content shifted by a non-page amount —
    16B-granularity stack randomization, relocated heap objects.  For a
    population of shifted page copies, we count how often each scheme's
    fingerprint still overlaps the original page's fingerprint (the
    precondition for finding the right base page).
    """
    import numpy as np

    from repro._util import rng_for
    from repro.memory.fingerprint import page_fingerprint

    rng = rng_for("ablation-shift")
    value_hits = fixed_hits = 0
    trials = 60
    value_config = FingerprintConfig(strategy=SamplingStrategy.VALUE_SAMPLED)
    fixed_config = FingerprintConfig(strategy=SamplingStrategy.FIXED_OFFSETS)
    for trial in range(trials):
        page = rng.integers(0, 256, size=4096, dtype=np.uint8)
        shift = int(rng.integers(1, 128)) * 16  # 16B-granularity shift
        shifted = np.roll(page, shift)
        if page_fingerprint(page, value_config).overlap(
            page_fingerprint(shifted, value_config)
        ):
            value_hits += 1
        if page_fingerprint(page, fixed_config).overlap(
            page_fingerprint(shifted, fixed_config)
        ):
            fixed_hits += 1

    # Context: end-to-end savings on (page-aligned) ASLR'd sandboxes,
    # where the two schemes are expected to be comparable.
    suite = FunctionBenchSuite.default()
    value_savings = measure_function_savings(
        suite, content_scale=SCALE, aslr=True, fingerprint=value_config
    )
    fixed_savings = measure_function_savings(
        suite, content_scale=SCALE, aslr=True, fingerprint=fixed_config
    )
    mean_value = sum(m.savings_fraction for m in value_savings.values()) / len(suite)
    mean_fixed = sum(m.savings_fraction for m in fixed_savings.values()) / len(suite)

    text = render_table(
        ["metric", "value-sampled", "fixed-offset (DE)"],
        [
            (
                "shifted-page fingerprint match rate",
                f"{value_hits}/{trials}",
                f"{fixed_hits}/{trials}",
            ),
            (
                "mean savings, ASLR'd sandboxes",
                f"{mean_value * 100:.1f}%",
                f"{mean_fixed * 100:.1f}%",
            ),
        ],
        title="Ablation: fingerprint sampling strategy (Sec 8 vs Difference Engine)",
    )
    write_result("ablation_fingerprint_strategy", text)

    # The paper's claim: value sampling identifies shifted redundancy.
    assert value_hits > fixed_hits * 2
    assert value_hits > trials * 0.6
    # On aligned content the schemes are comparable (within a few points).
    assert abs(mean_value - mean_fixed) < 0.08

    benchmark(
        measure_function_savings,
        FunctionBenchSuite.subset(["LinAlg"]),
        content_scale=SCALE,
        aslr=True,
    )


def test_ablation_hash_kind(benchmark):
    """SHA-1 vs the vectorized polynomial digest (``hash_kind=POLY64``).

    The polynomial digest exists purely for fingerprint throughput (one
    matmul instead of one SHA-1 call per chunk), so the ablation checks
    what that trade buys and costs: identical similarity detection —
    per-function savings must match SHA-1's to within noise — and
    comparable collision behaviour at truncated digest widths, measured
    as duplicate digests over a population of random chunks against the
    birthday-bound expectation.
    """
    import numpy as np

    from repro._util import hash_rows_sha1, poly_hash_rows, rng_for
    from repro.memory.fingerprint import HashKind

    sha1_config = FingerprintConfig(hash_kind=HashKind.SHA1)
    poly_config = FingerprintConfig(hash_kind=HashKind.POLY64)

    # Collision rates at a deliberately narrow digest (birthday regime).
    bits, chunks = 20, 20_000
    matrix = rng_for("ablation-hash-kind").integers(
        0, 256, size=(chunks, sha1_config.chunk_size), dtype=np.uint8
    )
    expected = chunks * (chunks - 1) / 2 ** (bits + 1)
    sha1_dupes = chunks - len(np.unique(hash_rows_sha1(matrix, bits)))
    poly_dupes = chunks - len(np.unique(poly_hash_rows(matrix, bits)))

    suite = FunctionBenchSuite.default()
    sha1_savings = measure_function_savings(
        suite, content_scale=SCALE, aslr=True, fingerprint=sha1_config
    )
    poly_savings = measure_function_savings(
        suite, content_scale=SCALE, aslr=True, fingerprint=poly_config
    )
    mean_sha1 = sum(m.savings_fraction for m in sha1_savings.values()) / len(suite)
    mean_poly = sum(m.savings_fraction for m in poly_savings.values()) / len(suite)

    text = render_table(
        ["metric", "sha1", "poly64"],
        [
            (
                f"collisions, {chunks:,} chunks @ {bits}-bit digests"
                f" (birthday ~{expected:.0f})",
                str(sha1_dupes),
                str(poly_dupes),
            ),
            (
                "mean savings, ASLR'd sandboxes",
                f"{mean_sha1 * 100:.1f}%",
                f"{mean_poly * 100:.1f}%",
            ),
        ],
        title="Ablation: chunk digest kind (SHA-1 vs vectorized polynomial)",
    )
    write_result("ablation_hash_kind", text)

    # Both digests sit in the birthday regime (well-mixed truncations):
    # neither collides an order of magnitude more than the expectation.
    assert sha1_dupes < expected * 3
    assert poly_dupes < expected * 3
    # Same sampled offsets, equally-mixed digests: savings must agree.
    assert abs(mean_sha1 - mean_poly) < 0.02

    benchmark(poly_hash_rows, matrix, 64)


def test_ablation_dedup_abort(benchmark, workload):
    """Aborting in-flight dedups avoids cold starts at zero memory cost."""
    suite, trace = workload
    with_abort = _run_medes(
        suite, trace, representative_config(enable_dedup_abort=True)
    )
    without = _run_medes(
        suite, trace, representative_config(enable_dedup_abort=False)
    )
    text = render_table(
        ["variant", "cold starts", "dedup ops"],
        [
            ("abort enabled", with_abort.cold_starts(), len(with_abort.dedup_ops)),
            ("abort disabled", without.cold_starts(), len(without.dedup_ops)),
        ],
        title="Ablation: aborting in-flight dedup ops for arriving requests",
    )
    write_result("ablation_dedup_abort", text)
    assert with_abort.cold_starts() <= without.cold_starts() * 1.05

    benchmark(with_abort.start_counts)


def test_ablation_base_demarcation(benchmark, workload):
    """Trial-based base demarcation vs always/never per-function bases."""
    suite, trace = workload
    rows = []
    results = {}
    for label, threshold in (("never", 0.0), ("trial (default)", 0.45), ("always", 1.0)):
        metrics = _run_medes(
            suite, trace, representative_config(base_savings_threshold=threshold)
        )
        results[label] = metrics
        rows.append((label, metrics.cold_starts(), metrics.bases_created))
    text = render_table(
        ["demarcation", "cold starts", "bases created"],
        rows,
        title="Ablation: base-sandbox demarcation policy",
    )
    write_result("ablation_base_demarcation", text)

    # More aggressive demarcation creates more bases...
    assert results["always"].bases_created >= results["trial (default)"].bases_created
    assert results["trial (default)"].bases_created >= results["never"].bases_created
    # ...and the trial policy is at least as good as never having bases.
    assert results["trial (default)"].cold_starts() <= results["never"].cold_starts() * 1.05

    benchmark(results["trial (default)"].cold_starts)


def test_ablation_eviction_order(benchmark, workload):
    """Medes beats the fixed baseline under every eviction order."""
    suite, trace = workload
    rows = []
    for order in EvictionOrder:
        config = representative_config(eviction_order=order)
        medes = _run_medes(suite, trace, config)
        fixed = (
            build_platform(PlatformKind.FIXED_KEEP_ALIVE, config, suite)
            .run(trace)
            .metrics
        )
        rows.append((order.value, fixed.cold_starts(), medes.cold_starts()))
        assert medes.cold_starts() < fixed.cold_starts(), order
    text = render_table(
        ["eviction order", "fixed KA cold starts", "Medes cold starts"],
        rows,
        title="Ablation: eviction-order robustness",
    )
    write_result("ablation_eviction_order", text)

    benchmark(list, EvictionOrder)


def test_ablation_registry_sharding(benchmark, workload):
    """Section 4.3: a sharded controller registry changes nothing."""
    suite, trace = workload
    single = _run_medes(suite, trace, representative_config(registry_shards=1))
    sharded = _run_medes(suite, trace, representative_config(registry_shards=4))
    text = render_table(
        ["registry", "cold starts", "dedup ops"],
        [
            ("1 shard", single.cold_starts(), len(single.dedup_ops)),
            ("4 shards", sharded.cold_starts(), len(sharded.dedup_ops)),
        ],
        title="Ablation: controller registry sharding (Sec 4.3)",
    )
    write_result("ablation_registry_sharding", text)
    assert sharded.cold_starts() == single.cold_starts()
    assert len(sharded.dedup_ops) == len(single.dedup_ops)

    benchmark(single.start_counts)
