"""Throughput of the dedup op: batch pipeline vs per-page reference.

The dedup op is Medes' dominant overhead (Section 7.7), so its
throughput caps every other experiment's scale.  This benchmark times
:meth:`DedupAgent.dedup` (the vectorized batch pipeline) against
:meth:`DedupAgent.dedup_reference` (the original page-at-a-time loop:
per-page ``page_fingerprint``, per-page ``choose_base_page``, and a
fresh ``store.get`` per patched page) on identical inputs, and records
pages/sec for both into ``BENCH_dedup_throughput.json`` at the repo
root — the start of the perf trajectory.

Methodology: the box this runs on shows heavy timing jitter, so each
(batch, reference) sample is taken *paired* — the two paths run
back-to-back on byte-identical sandbox images, repeated ``reps`` times,
keeping the per-path minimum.  Ratios from paired minima are stable
where wall-clock means are not.  ``level`` is the agent's patch level:
level 1 (the default, sparse anchor probing) leaves less scalar work to
vectorize than level 2 (dense probing, the VectorCDC-style content
scanning case), so both are reported.

Run standalone for the full matrix::

    PYTHONPATH=src python benchmarks/bench_dedup_throughput.py

or via pytest for a reduced smoke configuration.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import statistics
import time

from benchmarks.conftest import write_result
from repro.analysis.tables import render_table
from repro.core.agent import DedupAgent
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import FingerprintConfig, image_fingerprints
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.workload.functionbench import FunctionBenchSuite

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_dedup_throughput.json"

DEFAULT_PROFILES = ("Vanilla", "LinAlg", "ImagePro", "MapReduce")
DEFAULT_SCALE_DENOM = 32
DEFAULT_OPS = 4
DEFAULT_REPS = 5


def _make_agent(profile, profile_name: str, scale: float, level: int) -> DedupAgent:
    """One agent with its own store/registry, seeded with one base."""
    cfg = FingerprintConfig()
    store = CheckpointStore()
    registry = FingerprintRegistry(cfg)
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=scale,
        fingerprint_config=cfg,
        patch_level=level,
    )
    base_image = profile.synthesize(100, content_scale=scale, executed=True)
    checkpoint = BaseCheckpoint(
        function=profile_name,
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
    )
    store.add(checkpoint)
    for index, fp in enumerate(image_fingerprints(base_image, cfg)):
        registry.register_page(PageRef(checkpoint.checkpoint_id, 1, index), fp)
    return agent


def run_config(
    suite,
    profile_name: str,
    *,
    aslr: bool,
    level: int,
    scale: float,
    ops: int,
    reps: int,
) -> dict:
    """Paired batch-vs-reference timing of ``ops`` dedup ops."""
    profile = suite.get(profile_name)

    def make_sandbox(seed: int) -> Sandbox:
        sandbox = Sandbox(profile=profile, node_id=0, instance_seed=seed, created_at=0.0)
        sandbox.image = profile.synthesize(
            seed, content_scale=scale, aslr=aslr, executed=True
        )
        sandbox.image.checksum()  # exclude the (cached) checkpoint digest
        return sandbox

    agent_batch = _make_agent(profile, profile_name, scale, level)
    agent_ref = _make_agent(profile, profile_name, scale, level)
    for k in range(2):  # warm caches and allocator
        agent_batch.dedup(make_sandbox(200 + k))
        agent_ref.dedup_reference(make_sandbox(200 + k))

    total_batch = total_ref = 0.0
    pages = 0
    batch_samples: list[float] = []  # pages/s, one per (op, rep) run
    ref_samples: list[float] = []
    for k in range(ops):
        best_batch = best_ref = math.inf
        outcome = None
        for _ in range(reps):
            s_batch, s_ref = make_sandbox(300 + k), make_sandbox(300 + k)
            op_pages = s_batch.image.num_pages
            t0 = time.perf_counter()
            outcome = agent_batch.dedup(s_batch)
            dt = time.perf_counter() - t0
            best_batch = min(best_batch, dt)
            batch_samples.append(op_pages / dt)
            t0 = time.perf_counter()
            agent_ref.dedup_reference(s_ref)
            dt = time.perf_counter() - t0
            best_ref = min(best_ref, dt)
            ref_samples.append(op_pages / dt)
        pages += len(outcome.table.entries)
        total_batch += best_batch
        total_ref += best_ref
    return {
        "profile": profile_name,
        "aslr": aslr,
        "level": level,
        "pages": pages,
        "batch_pages_per_s": round(pages / total_batch, 1),
        "reference_pages_per_s": round(pages / total_ref, 1),
        # Per-run dispersion (all reps, not just the minima), so
        # bench-to-bench noise is visible next to the headline numbers.
        "batch_pages_per_s_median": round(statistics.median(batch_samples), 1),
        "batch_pages_per_s_stdev": round(_stdev(batch_samples), 1),
        "reference_pages_per_s_median": round(statistics.median(ref_samples), 1),
        "reference_pages_per_s_stdev": round(_stdev(ref_samples), 1),
        "speedup": round(total_ref / total_batch, 3),
    }


def _stdev(samples: list[float]) -> float:
    return statistics.stdev(samples) if len(samples) > 1 else 0.0


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def run_matrix(
    profiles=DEFAULT_PROFILES,
    levels=(1, 2),
    scale_denom: int = DEFAULT_SCALE_DENOM,
    ops: int = DEFAULT_OPS,
    reps: int = DEFAULT_REPS,
) -> dict:
    suite = FunctionBenchSuite.default()
    scale = 1.0 / scale_denom
    results = [
        run_config(
            suite, name, aslr=aslr, level=level,
            scale=scale, ops=ops, reps=reps,
        )
        for level in levels
        for name in profiles
        for aslr in (False, True)
    ]
    by_level = {
        level: _geomean([r["speedup"] for r in results if r["level"] == level])
        for level in levels
    }
    return {
        "benchmark": "dedup_throughput",
        "units": "pages/sec of the dedup op, paired min-of-reps",
        "config": {
            "content_scale": f"1/{scale_denom}",
            "ops_per_config": ops,
            "reps_per_op": reps,
            "python": platform.python_version(),
        },
        "results": results,
        "summary": {
            "geomean_speedup_by_level": {
                str(level): round(v, 3) for level, v in by_level.items()
            },
            "max_speedup": round(max(r["speedup"] for r in results), 3),
            "min_speedup": round(min(r["speedup"] for r in results), 3),
        },
    }


def _render(report: dict) -> str:
    rows = [
        [
            r["profile"],
            "on" if r["aslr"] else "off",
            str(r["level"]),
            f"{r['batch_pages_per_s']:,.0f}",
            f"{r['reference_pages_per_s']:,.0f}",
            f"{r['speedup']:.2f}x",
        ]
        for r in report["results"]
    ]
    return render_table(
        ["function", "aslr", "level", "batch p/s", "reference p/s", "speedup"],
        rows,
        title="Dedup-op throughput: batch pipeline vs per-page reference",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profiles", default=",".join(DEFAULT_PROFILES))
    parser.add_argument("--levels", default="1,2")
    parser.add_argument("--scale-denom", type=int, default=DEFAULT_SCALE_DENOM)
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS)
    args = parser.parse_args(argv)
    report = run_matrix(
        profiles=tuple(args.profiles.split(",")),
        levels=tuple(int(x) for x in args.levels.split(",")),
        scale_denom=args.scale_denom,
        ops=args.ops,
        reps=args.reps,
    )
    OUTPUT_JSON.write_text(json.dumps(report, indent=2) + "\n")
    text = _render(report)
    write_result("dedup_throughput", text)
    print(text)
    print(f"\nwrote {OUTPUT_JSON}")


def test_dedup_throughput_smoke():
    """Reduced matrix: the batch path must beat the reference path."""
    report = run_matrix(profiles=("Vanilla",), levels=(1, 2), ops=2, reps=3)
    for result in report["results"]:
        assert result["speedup"] > 1.0, result
    # Dense probing is the VectorCDC-style case: the win must be large.
    level2 = [r["speedup"] for r in report["results"] if r["level"] == 2]
    assert _geomean(level2) > 2.0


if __name__ == "__main__":
    main()
