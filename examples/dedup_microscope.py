#!/usr/bin/env python3
"""A dedup op and restore op under the microscope (Sections 4.1-4.2).

Walks one sandbox through the full Medes mechanism on real bytes:
synthesize its memory image, register a base sandbox in the fingerprint
registry, run the dedup op (value-sampled fingerprints, base-page
choice, patch computation), inspect the resulting page table, then
restore and verify the image byte for byte.

Run:
    python examples/dedup_microscope.py [function]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro._util import MIB, fmt_bytes, fmt_ms
from repro.core.agent import DedupAgent, PageKind
from repro.core.costs import CostModel
from repro.core.registry import FingerprintRegistry, PageRef
from repro.memory.fingerprint import page_fingerprint
from repro.sandbox.checkpoint import BaseCheckpoint, CheckpointStore
from repro.sandbox.sandbox import Sandbox
from repro.sim.network import RdmaFabric
from repro.workload.functionbench import FunctionBenchSuite

SCALE = 1.0 / 64.0


def main() -> None:
    function = sys.argv[1] if len(sys.argv) > 1 else "LinAlg"
    suite = FunctionBenchSuite.default()
    profile = suite.get(function)
    print(f"Function: {profile.name} ({profile.description}), "
          f"{profile.memory_mb:g} MB footprint\n")

    # Wire the dedup machinery of one node (node 0), with the base
    # sandbox living remotely on node 1.
    store = CheckpointStore()
    registry = FingerprintRegistry()
    agent = DedupAgent(
        0,
        registry=registry,
        store=store,
        fabric=RdmaFabric(),
        costs=CostModel(),
        content_scale=SCALE,
    )

    print("1. Demarcating a base sandbox on node 1 and registering its")
    print("   value-sampled page fingerprints in the controller registry...")
    base_image = profile.synthesize(1, content_scale=SCALE, executed=True)
    checkpoint = BaseCheckpoint(
        function=profile.name,
        node_id=1,
        image=base_image,
        owner_sandbox_id=1,
        full_size_bytes=profile.memory_bytes,
    )
    store.add(checkpoint)
    for index in range(base_image.num_pages):
        registry.register_page(
            PageRef(checkpoint.checkpoint_id, 1, index),
            page_fingerprint(base_image.page(index)),
        )
    print(f"   registry now holds {registry.digest_count} chunk digests "
          f"({fmt_bytes(registry.memory_bytes())})\n")

    print("2. Running the dedup op on a second sandbox of the function...")
    sandbox = Sandbox(profile=profile, node_id=0, instance_seed=2, created_at=0.0)
    sandbox.image = profile.synthesize(2, content_scale=SCALE, executed=True)
    original_checksum = sandbox.image.checksum()
    outcome = agent.dedup(sandbox)
    table, timings = outcome.table, outcome.timings

    stats = table.stats
    print(f"   pages: {stats.total_pages} total = {stats.zero_pages} zero + "
          f"{stats.patched_pages} patched + {stats.unique_pages} unique")
    patch_sizes = [e.patch.size_bytes for e in table.entries
                   if e.kind is PageKind.PATCHED]
    print(f"   mean patch size: {sum(patch_sizes) / len(patch_sizes):.0f} B "
          f"(vs {table.page_size} B pages)")
    print(f"   memory: {profile.memory_mb:g} MB warm -> "
          f"{table.retained_full_bytes / MIB:.1f} MB deduped "
          f"({stats.savings_fraction * 100:.1f}% saved)")
    print(f"   dedup op duration (full-scale): {fmt_ms(timings.total_ms)} "
          f"(checkpoint {fmt_ms(timings.checkpoint_ms)}, registry lookups "
          f"{fmt_ms(timings.lookup_ms)}, patches {fmt_ms(timings.patch_ms)})")
    refs = Counter({store.get(c).function: n for c, n in table.base_refs.items()})
    print(f"   base-page references: {dict(refs)}\n")

    print("3. Restoring the sandbox from patches + remote base pages...")
    restore = agent.restore(table, verify=True)
    print(f"   restore: base reads {fmt_ms(restore.timings.base_read_ms)} + "
          f"page compute {fmt_ms(restore.timings.compute_ms)} + "
          f"resume {fmt_ms(restore.timings.restore_ms)} = "
          f"{fmt_ms(restore.timings.total_ms)} "
          f"(cold start would be {fmt_ms(profile.cold_start_ms)})")
    assert restore.image.checksum() == original_checksum
    print("   restored image is byte-identical to the original ✔")


if __name__ == "__main__":
    main()
