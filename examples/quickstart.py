#!/usr/bin/env python3
"""Quickstart: replay a serverless workload on Medes and a baseline.

Builds the FunctionBench suite, generates a 10-minute Azure-style trace,
replays it on a fixed-keep-alive platform and on Medes over the same
oversubscribed cluster, and prints the side-by-side results.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AzureTraceGenerator,
    ClusterConfig,
    FunctionBenchSuite,
    PlatformKind,
    StartType,
    build_platform,
    improvement_factors,
)


def main() -> None:
    # The ten FunctionBench functions of the paper's Tables 1-2.
    suite = FunctionBenchSuite.default()
    trace = AzureTraceGenerator(seed=42).generate(10, suite.names())
    print(f"Workload: {len(trace)} requests over 10 minutes, "
          f"{len(suite)} functions\n")

    # A small oversubscribed cluster (the paper's 2 GB/node soft limit).
    config = ClusterConfig(nodes=2, node_memory_mb=1024.0, seed=7)

    reports = {}
    for kind in (PlatformKind.FIXED_KEEP_ALIVE, PlatformKind.MEDES):
        platform = build_platform(kind, config, suite)
        report = platform.run(trace)
        reports[report.platform_name] = report
        print(report.summary())
        print()

    fixed = reports["fixed-ka-10min"].metrics
    medes = reports["medes"].metrics
    saved = fixed.cold_starts() - medes.cold_starts()
    print(f"Medes avoided {saved} cold starts "
          f"({saved / max(1, fixed.cold_starts()) * 100:.0f}% fewer), serving "
          f"{medes.start_counts()[StartType.DEDUP]} requests from dedup sandboxes.")

    factors = sorted(improvement_factors(fixed, medes))
    if factors:
        p99 = factors[int(len(factors) * 0.99)]
        print(f"Per-request e2e improvement factor: median "
              f"{factors[len(factors) // 2]:.2f}x, p99 {p99:.2f}x")


if __name__ == "__main__":
    main()
