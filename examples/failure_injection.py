#!/usr/bin/env python3
"""Node failure and the dedup substrate (paper Section 4.1.3).

A dedup sandbox's patches are useless if the node holding its base pages
becomes unreachable.  This example builds a Medes cluster, deduplicates
a sandbox whose base lives on another node, kills that node's fabric
link, and shows the platform degrading gracefully: the restore fails
fast, the broken dedup state is purged, and the request is served cold.

Run:
    python examples/failure_injection.py
"""

from __future__ import annotations

import json

from repro.core.policy import MedesPolicyConfig
from repro.platform import ClusterConfig, PlatformKind, StartType, build_platform
from repro.workload import FunctionBenchSuite, Trace


def main() -> None:
    suite = FunctionBenchSuite.subset(["RNNModel"])
    config = ClusterConfig(nodes=2, node_memory_mb=512.0, seed=8, verify_restores=True)
    policy = MedesPolicyConfig(idle_period_ms=5_000.0, alpha=25.0)

    # Two sandboxes early (one becomes the base, one deduplicates).
    # Two requests then arrive together after the failure: the first takes
    # the (warm) base sandbox, the second can only be served by the
    # deduplicated sandbox -- whose base pages are now unreachable.
    trace = Trace.from_arrivals(
        [(0.0, "RNNModel"), (1.0, "RNNModel"), (90_000.0, "RNNModel"),
         (90_001.0, "RNNModel")]
    )

    platform = build_platform(PlatformKind.MEDES, config, suite, medes=policy)

    def kill_remote_links() -> None:
        print(f"[t={platform.sim.now / 1000:.0f}s] failing the RDMA links "
              f"of every node — remote base pages become unreachable")
        for node in platform.nodes:
            platform.fabric.fail_peer(node.node_id)

    platform.sim.at(60_000.0, kill_remote_links)
    report = platform.run(trace)

    print("\nPer-request outcome:")
    for record in report.metrics.requests.values():
        print(f"  t={record.arrival_ms / 1000:5.0f}s  {record.start_type.value:5s} "
              f"startup={record.startup_ms:7.1f} ms")

    final = report.metrics.requests[3]
    if final.start_type is StartType.COLD:
        print("\nThe post-failure request fell back to a cold start: the dedup")
        print("sandbox's base pages were unreachable, so its state was purged")
        print("rather than risking a corrupt restore.")
    else:
        print("\nThe dedup sandbox's base pages happened to be node-local, so")
        print("the restore proceeded without touching the failed fabric.")

    print(f"\nfabric: {platform.fabric.stats.failed_reads} failed read batches, "
          f"{platform.fabric.stats.remote_reads} successful remote reads")

    snapshot = platform.cluster_snapshot()
    print("\nFinal cluster snapshot:")
    print(json.dumps(snapshot, indent=2)[:800] + "\n  ...")


if __name__ == "__main__":
    main()
