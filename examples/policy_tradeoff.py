#!/usr/bin/env python3
"""Navigating the memory-performance trade-off (the paper's Section 5).

Demonstrates the operator interface Medes exposes: the P1 policy with a
sweep of latency bounds (alpha), and the P2 policy with a sweep of
memory budgets.  Each point is one platform run over the same trace —
tightening alpha trades memory for startup latency and vice versa.

Run:
    python examples/policy_tradeoff.py
"""

from __future__ import annotations

from repro._util import MIB
from repro.analysis.experiments import representative_workload
from repro.analysis.tables import render_table
from repro.core.optimizer import Objective
from repro.core.policy import MedesPolicyConfig
from repro.platform.config import ClusterConfig
from repro.platform.platform import PlatformKind, build_platform


def main() -> None:
    suite, trace = representative_workload(duration_min=10.0)
    # A comfortably-sized cluster: the trade-off knobs only matter when
    # the aggressive-dedup pressure fallback is not constantly engaged.
    config = ClusterConfig(nodes=2, node_memory_mb=2048.0, seed=1)
    print(f"Workload: {len(trace)} requests, {len(suite)} functions\n")

    # --- P1: meet a mean-startup-latency target in minimum memory ------
    rows = []
    for alpha in (1.5, 2.5, 5.0, 15.0):
        policy = MedesPolicyConfig(objective=Objective.LATENCY, alpha=alpha)
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=policy)
        metrics = platform.run(trace).metrics
        rows.append(
            (
                f"{alpha:g}",
                metrics.cold_starts(),
                len(metrics.dedup_ops),
                f"{metrics.mean_memory_bytes() / MIB:.0f}",
                f"{metrics.e2e_percentile(99):.0f}",
            )
        )
    print(
        render_table(
            ["alpha", "cold starts", "dedup ops", "mean mem (MB)", "p99 e2e (ms)"],
            rows,
            title="P1 (latency objective): sweeping the startup bound alpha",
        )
    )
    print("Looser alpha -> more deduplication -> less memory.\n")

    # --- P2: meet a memory budget with minimum startup latency ---------
    rows = []
    for budget_fraction in (0.5, 0.7, 0.9):
        budget = int(config.cluster_capacity_bytes * budget_fraction)
        policy = MedesPolicyConfig(
            objective=Objective.MEMORY, memory_budget_bytes=budget
        )
        platform = build_platform(PlatformKind.MEDES, config, suite, medes=policy)
        metrics = platform.run(trace).metrics
        rows.append(
            (
                f"{budget / MIB:.0f}",
                metrics.cold_starts(),
                len(metrics.dedup_ops),
                f"{metrics.mean_memory_bytes() / MIB:.0f}",
                f"{metrics.e2e_percentile(99):.0f}",
            )
        )
    print(
        render_table(
            ["budget (MB)", "cold starts", "dedup ops", "mean mem (MB)", "p99 e2e (ms)"],
            rows,
            title="P2 (memory objective): sweeping the cluster budget",
        )
    )
    print("Tighter budgets -> more deduplication -> slightly slower startups.")


if __name__ == "__main__":
    main()
