#!/usr/bin/env python3
"""Medes under memory pressure (the paper's Section 7.4).

Shrinks the cluster memory pool across three settings and compares cold
starts and tail latencies for Medes versus both keep-alive baselines.
The paper's claim: Medes' advantage grows when memory is scarce, because
deduplicated sandboxes survive where warm sandboxes must be evicted.

Run:
    python examples/memory_pressure.py [--fast]
"""

from __future__ import annotations

import sys

from repro.analysis.experiments import full_workload
from repro.analysis.tables import render_table
from repro.platform.comparison import run_comparison
from repro.platform.config import ClusterConfig


def main() -> None:
    fast = "--fast" in sys.argv
    duration = 8.0 if fast else 20.0
    pools_mb = (3072.0, 1792.0) if fast else (3072.0, 2304.0, 1792.0)

    suite, trace = full_workload(duration_min=duration)
    print(f"Workload: {len(trace)} requests, {len(suite)} functions\n")

    rows = []
    for pool in pools_mb:
        config = ClusterConfig(nodes=2, node_memory_mb=pool / 2, seed=1)
        comparison = run_comparison(trace, suite, config)
        medes_name = comparison.medes_name()
        cold = {name: comparison.metrics(name).cold_starts() for name in comparison.names}
        gain = 1 - cold[medes_name] / cold["fixed-ka-10min"]
        rows.append(
            (
                f"{pool:.0f}MB",
                cold["fixed-ka-10min"],
                cold["adaptive-ka"],
                cold[medes_name],
                f"{gain * 100:.1f}%",
                f"{comparison.metrics(medes_name).dedup_share() * 100:.0f}%",
            )
        )
        print(f"pool {pool:.0f}MB done: Medes {cold[medes_name]} cold starts "
              f"vs fixed {cold['fixed-ka-10min']}")

    print()
    print(
        render_table(
            ["pool", "fixed KA", "adaptive KA", "Medes", "Medes gain", "deduped share"],
            rows,
            title="Cold starts vs cluster pool size (Fig 10a)",
        )
    )
    print("\nThe Medes gain column should grow (or persist) as the pool shrinks —")
    print("the paper measures 22% -> 37% -> 41% across its 40G/30G/20G pools.")


if __name__ == "__main__":
    main()
