#!/usr/bin/env python3
"""The Section-2 measurement study: how much memory do sandboxes share?

Reproduces the paper's motivation figures on synthetic sandbox images:
same-function redundancy across chunk sizes (with and without ASLR) and
the cross-function redundancy matrix, then estimates the achievable
memory savings on a keep-alive platform (Figure 2).

Run:
    python examples/redundancy_study.py
"""

from __future__ import annotations

from repro.analysis.study import (
    FIG1_CHUNK_SIZES,
    cross_function_matrix,
    measure_function_savings,
    same_function_redundancy,
    savings_timeline,
)
from repro.analysis.tables import render_matrix, render_table
from repro.workload.azure import AzureTraceGenerator
from repro.workload.functionbench import FunctionBenchSuite


def main() -> None:
    suite = FunctionBenchSuite.default()

    print("Measuring same-function redundancy (Fig 1a/1b)...\n")
    for aslr in (False, True):
        data = same_function_redundancy(suite, aslr=aslr)
        rows = [
            [fn] + [f"{by_chunk[c]:.3f}" for c in FIG1_CHUNK_SIZES]
            for fn, by_chunk in data.items()
        ]
        label = "enabled" if aslr else "disabled"
        print(
            render_table(
                ["function"] + [f"{c}B" for c in FIG1_CHUNK_SIZES],
                rows,
                title=f"Same-function redundancy, ASLR {label}",
            )
        )
        print()

    print("Measuring cross-function redundancy (Fig 1c)...\n")
    matrix = cross_function_matrix(suite)
    print(render_matrix(list(suite.names()), matrix,
                        title="Cross-function redundancy @64B chunks"))
    print()

    print("Estimating keep-alive memory savings (Fig 2)...\n")
    trace = AzureTraceGenerator(seed=2).generate(30, suite.names())
    savings = measure_function_savings(suite)
    points = savings_timeline(trace, suite, savings=savings)
    busy = [p for p in points if p.keep_alive_mb > 0]
    mean_saving = sum(1 - p.after_dedup_mb / p.keep_alive_mb for p in busy) / len(busy)
    peak_saving = max(1 - p.after_dedup_mb / p.keep_alive_mb for p in busy)
    print(f"Mean achievable saving over the trace: {mean_saving * 100:.1f}%")
    print(f"Peak achievable saving:                {peak_saving * 100:.1f}%")
    print("(the paper's Figure 2 reports savings of up to ~30%)")


if __name__ == "__main__":
    main()
