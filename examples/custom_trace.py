#!/usr/bin/env python3
"""Bring your own trace: CSV in, JSON report out.

Shows the library's data-interchange surface: build (or load) a trace
from a two-column CSV, replay it on Medes and a baseline, and export the
paired comparison as JSON — the workflow for replaying real production
traces (e.g. rows derived from the Azure Functions dataset) through the
reproduction.

Run:
    python examples/custom_trace.py [trace.csv]
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.platform import ClusterConfig, save_report
from repro.platform.comparison import run_comparison
from repro.platform.report_io import comparison_to_dict
from repro.workload import FunctionBenchSuite, dump_trace, load_trace
from repro.workload.azure import AzureTraceGenerator


def demo_trace_csv(path: Path) -> None:
    """Write a demo CSV: a bursty ML function plus a steady web tier."""
    suite_names = ("RNNModel", "HTMLServe")
    trace = AzureTraceGenerator(seed=77).generate(8, suite_names)
    dump_trace(trace, path)
    print(f"Wrote a demo trace to {path} ({len(trace)} requests); "
          f"replace it with your own CSV (columns: arrival_ms,function).")


def main() -> None:
    if len(sys.argv) > 1:
        csv_path = Path(sys.argv[1])
    else:
        csv_path = Path(tempfile.gettempdir()) / "medes_demo_trace.csv"
        demo_trace_csv(csv_path)

    trace = load_trace(csv_path)
    functions = trace.functions()
    print(f"Loaded {len(trace)} requests over "
          f"{trace.duration_ms / 60_000:.1f} min across {len(functions)} functions: "
          f"{', '.join(functions)}\n")

    suite = FunctionBenchSuite.subset(list(functions))
    config = ClusterConfig(nodes=2, node_memory_mb=512.0, seed=3)
    comparison = run_comparison(trace, suite, config)

    for name in comparison.names:
        metrics = comparison.metrics(name)
        print(f"{name:18s} cold={metrics.cold_starts():4d} "
              f"p99={metrics.e2e_percentile(99):7.0f} ms "
              f"mem={metrics.mean_memory_bytes() / 2**20:5.0f} MB")

    out_path = csv_path.with_suffix(".report.json")
    out_path.write_text(json.dumps(comparison_to_dict(comparison), indent=2))
    print(f"\nFull comparison exported to {out_path}")

    medes_report = comparison.reports[comparison.medes_name()]
    detail_path = csv_path.with_suffix(".medes.json")
    save_report(medes_report, detail_path, include_requests=True)
    print(f"Per-request Medes detail exported to {detail_path}")


if __name__ == "__main__":
    main()
